//! Opt-bisect: given an oracle-detected miscompile, binary-search the
//! pass-invocation counter to the first bad pass and emit a replayable
//! crash-report artifact.
//!
//! This is the native equivalent of LLVM's `-opt-bisect-limit` workflow.
//! The pipeline numbers every pass invocation with a stable counter and
//! skips invocations at indices `>= limit` (see
//! [`uu_core::PipelineOptions::bisect_limit`]); because invocation `i`
//! depends only on invocations `< i`, the predicate "compiling with limit
//! `k` reproduces the failure" is evaluated by recompiling from scratch at
//! each probe, and a standard binary search over `k` lands on the first
//! invocation whose inclusion flips the compile from good to bad — in at
//! most ⌈log₂ n⌉ + 1 recompiles for an n-invocation pipeline.
//!
//! The resulting [`BisectReport`] carries the offending
//! [`PassInvocation`], the IR snapshot from *just before* that pass (the
//! minimized repro), and the spec + configuration needed to replay the
//! failure; [`write_crash_report`] persists it atomically under
//! `crash-reports/` (override with `UU_CRASH_DIR`).

use crate::oracle::{build_kernel, execute, KernelSpec};
use std::path::PathBuf;
use uu_core::{compile, FaultPlan, LoopFilter, PassInvocation, PipelineOptions, Transform};
use uu_ir::Module;

/// The outcome of one bisection run.
#[derive(Debug, Clone)]
pub struct BisectReport {
    /// The first pass invocation whose inclusion makes the compile bad.
    pub first_bad: PassInvocation,
    /// Total pass invocations in the full (unlimited) compile.
    pub total_invocations: u64,
    /// Recompiles spent by the binary search (excluding the initial full
    /// compile that sized the search space); always ≤ ⌈log₂ n⌉ + 1.
    pub recompiles: u32,
    /// Printed IR of the module just before the first bad pass ran — the
    /// minimized repro input.
    pub pre_pass_ir: String,
    /// The diagnosis of the full (bad) compile.
    pub diagnosis: String,
    /// The failing configuration.
    pub transform: Transform,
    /// The spec that exposed the failure (corpus `.seed` format via
    /// `Display`).
    pub spec: KernelSpec,
    /// The fault plan in effect, if the failure was injected.
    pub fault: Option<FaultPlan>,
}

impl std::fmt::Display for BisectReport {
    /// The crash-report artifact format: a self-contained, replayable
    /// description of the failure.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "# uu crash report")?;
        writeln!(f, "first-bad-pass = {}#{}@{}", self.first_bad.pass, self.first_bad.index, self.first_bad.function)?;
        writeln!(f, "total-invocations = {}", self.total_invocations)?;
        writeln!(f, "bisect-recompiles = {}", self.recompiles)?;
        writeln!(f, "transform = {:?}", self.transform)?;
        match &self.fault {
            Some(p) => writeln!(f, "fault = {p}")?,
            None => writeln!(f, "fault = none")?,
        }
        writeln!(f, "\n## diagnosis\n{}", self.diagnosis)?;
        writeln!(f, "\n## spec (corpus .seed format — replay with uu-fuzz corpus)\n{}", self.spec)?;
        writeln!(f, "\n## pre-pass IR (module before the first bad pass)\n{}", self.pre_pass_ir)
    }
}

/// The bad-compile predicate: compile `spec` under `transform` with the
/// given bisect `limit` and report the failure diagnosis (`None` = clean).
fn probe(
    spec: &KernelSpec,
    transform: &Transform,
    fault: Option<FaultPlan>,
    limit: Option<u64>,
    golden: &[i64],
) -> (Option<String>, Module, Vec<PassInvocation>) {
    let mut m = Module::new("bisect");
    let id = m.add_function(build_kernel(spec));
    let out = compile(
        &mut m,
        &PipelineOptions {
            transform: transform.clone(),
            filter: LoopFilter::All,
            fault,
            bisect_limit: limit,
            ..Default::default()
        },
    );
    let diag = if let Some(e) = &out.verify_error {
        Some(format!("invalid IR: {e}"))
    } else {
        match execute(m.function(id), spec) {
            Err(e) => Some(e),
            Ok(got) if got != golden => {
                Some(format!("diverged\n  want: {golden:?}\n  got:  {got:?}"))
            }
            Ok(_) => None,
        }
    };
    (diag, m, out.pass_log)
}

/// Bisect an oracle-detected failure of `transform` on `spec` down to the
/// first bad pass invocation.
///
/// # Errors
///
/// Returns a diagnosis string when the premise does not hold — the full
/// compile is actually clean (nothing to bisect), the raw kernel itself
/// fails (generator bug), or the failure fires even with every pass
/// disabled.
pub fn bisect(
    spec: &KernelSpec,
    transform: &Transform,
    fault: Option<FaultPlan>,
) -> Result<BisectReport, String> {
    let kernel = build_kernel(spec);
    let golden = execute(&kernel, spec).map_err(|e| format!("raw kernel fails: {e}"))?;

    // Size the search space with one full compile and confirm it is bad.
    let (full_diag, _, full_log) = probe(spec, transform, fault, None, &golden);
    let diagnosis = full_diag.ok_or("full compile is clean; nothing to bisect")?;
    let n = full_log.len() as u64;
    if n == 0 {
        return Err("full compile ran no passes yet failed".into());
    }
    // Invariant: limit `lo` is good, limit `hi` is bad.
    let (mut lo, mut hi) = (0u64, n);
    let mut recompiles = 0u32;
    let (zero_diag, _, _) = probe(spec, transform, fault, Some(0), &golden);
    recompiles += 1;
    if let Some(d) = zero_diag {
        return Err(format!("failure persists with all passes disabled: {d}"));
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let (diag, _, _) = probe(spec, transform, fault, Some(mid), &golden);
        recompiles += 1;
        if diag.is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    // The first bad invocation is the one limit `hi` enables and limit
    // `lo = hi - 1` excludes: index hi - 1. Its pre-pass IR is the module
    // compiled with exactly the passes before it.
    let first_bad = full_log[(hi - 1) as usize].clone();
    let (_, pre_module, _) = probe(spec, transform, fault, Some(hi - 1), &golden);
    Ok(BisectReport {
        first_bad,
        total_invocations: n,
        recompiles,
        pre_pass_ir: pre_module.to_string(),
        diagnosis,
        transform: transform.clone(),
        spec: spec.clone(),
        fault,
    })
}

/// Directory crash reports are written to: `UU_CRASH_DIR` if set, else
/// `crash-reports/` under the current directory.
pub fn crash_dir() -> PathBuf {
    std::env::var_os("UU_CRASH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("crash-reports"))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Persist a crash report atomically (temp file + rename) under
/// [`crash_dir`], named by a stable content hash so identical failures
/// dedupe. Returns the final path.
///
/// # Errors
///
/// Propagates I/O errors (unwritable dir, full disk) as strings.
pub fn write_crash_report(report: &BisectReport) -> Result<PathBuf, String> {
    let dir = crash_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let body = report.to_string();
    let name = format!(
        "crash-{:016x}.txt",
        fnv1a(format!("{}\n{:?}\n{:?}", report.spec, report.transform, report.fault).as_bytes())
    );
    let path = dir.join(&name);
    let tmp = dir.join(format!(".{name}.tmp"));
    std::fs::write(&tmp, &body).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("rename {}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_core::FaultKind;

    fn spec() -> KernelSpec {
        KernelSpec {
            bound: 6,
            straight_ops: vec![(0, 0, 1), (2, 1, 3)],
            arm_ops: vec![(1, 0, 2)],
            else_ops: vec![(0, 1, 1)],
            cond_sel: 1,
            divergent: true,
            input_a: 3,
            inner_trip: 0,
        }
    }

    #[test]
    fn bisection_pinpoints_injected_miscompile_within_log_bound() {
        let transform = Transform::Uu {
            factor: 2,
            unmerge: Default::default(),
        };
        // Probe a few injection points; not every index produces an
        // observable divergence (the mutation may hit dead code), so
        // assert on the ones that do — and require at least one to.
        let mut exercised = 0;
        for at in 0..8u64 {
            let fault = Some(FaultPlan {
                kind: FaultKind::Miscompile,
                at,
                seed: at.wrapping_mul(0x9E37),
            });
            let Ok(report) = bisect(&spec(), &transform, fault) else {
                continue; // this injection point was not observable
            };
            exercised += 1;
            assert_eq!(
                report.first_bad.index, at,
                "bisection must land exactly on the injected pass"
            );
            let n = report.total_invocations;
            let bound = 64 - u64::leading_zeros(n.max(1)) + 1; // ⌈log₂ n⌉ + 1
            assert!(
                report.recompiles <= bound,
                "{} recompiles for n={n} (bound {bound})",
                report.recompiles
            );
            assert!(!report.pre_pass_ir.is_empty());
            assert!(report.diagnosis.contains("diverged") || report.diagnosis.contains("fail"));
        }
        assert!(exercised >= 2, "expected ≥2 observable injection points, got {exercised}");
    }

    #[test]
    fn bisection_pinpoints_miscompiles_in_the_meld_pass() {
        // The combined uu+meld config runs "uu" as invocation 0 and "meld"
        // as invocation 1; a miscompile injected into the meld invocation
        // must bisect back to the meld pass by name, exactly like any
        // other transform. Not every seed produces an observable mutation,
        // so probe a few and require at least one hit.
        let transform = Transform::UuMeld {
            factor: 2,
            unmerge: Default::default(),
        };
        let mut meld_hits = 0;
        for seed in [7u64, 0x9E37, 0xBEEF, 0x1234, 0xFEED5] {
            let fault = Some(FaultPlan {
                kind: FaultKind::Miscompile,
                at: 1,
                seed,
            });
            let Ok(report) = bisect(&spec(), &transform, fault) else {
                continue;
            };
            assert_eq!(report.first_bad.index, 1);
            assert_eq!(
                report.first_bad.pass, "meld",
                "invocation 1 under uu+meld must be the meld pass"
            );
            meld_hits += 1;
        }
        assert!(
            meld_hits >= 1,
            "no seed produced an observable meld miscompile"
        );
    }

    #[test]
    fn clean_compiles_refuse_to_bisect() {
        let transform = Transform::Baseline;
        let err = bisect(&spec(), &transform, None).unwrap_err();
        assert!(err.contains("clean"), "{err}");
    }

    #[test]
    fn crash_report_is_replayable_and_atomic() {
        let transform = Transform::Uu {
            factor: 2,
            unmerge: Default::default(),
        };
        let mut report = None;
        for at in 0..8u64 {
            let fault = Some(FaultPlan { kind: FaultKind::Miscompile, at, seed: 7 });
            if let Ok(r) = bisect(&spec(), &transform, fault) {
                report = Some(r);
                break;
            }
        }
        let report = report.expect("no observable injection point");
        let dir = std::env::temp_dir().join(format!("uu-crash-test-{}", std::process::id()));
        std::env::set_var("UU_CRASH_DIR", &dir);
        let path = write_crash_report(&report).unwrap();
        std::env::remove_var("UU_CRASH_DIR");
        let text = std::fs::read_to_string(&path).unwrap();
        // The artifact replays: the embedded spec parses back to the input.
        let spec_part = text
            .split("## spec (corpus .seed format — replay with uu-fuzz corpus)\n")
            .nth(1)
            .unwrap()
            .split("\n\n## pre-pass IR")
            .next()
            .unwrap();
        let parsed = crate::corpus::parse_spec(spec_part.trim()).unwrap();
        assert_eq!(parsed, report.spec);
        assert!(text.contains("first-bad-pass = "));
        // No temp file left behind.
        assert!(std::fs::read_dir(&dir).unwrap().all(|e| {
            !e.unwrap().file_name().to_string_lossy().ends_with(".tmp")
        }));
        std::fs::remove_dir_all(&dir).ok();
    }
}

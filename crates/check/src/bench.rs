//! A wall-clock micro-benchmark harness (the workspace's `criterion`
//! replacement): warmup-based calibration, median-of-N sampling and JSON
//! output for regression tracking.
//!
//! Bench targets are plain binaries (`harness = false` in the manifest)
//! whose `main` drives a [`Harness`]:
//!
//! ```no_run
//! use uu_check::bench::Harness;
//!
//! let mut h = Harness::new("example");
//! h.bench("fib20", || {
//!     fn fib(n: u64) -> u64 { if n < 2 { n } else { fib(n - 1) + fib(n - 2) } }
//!     fib(20)
//! });
//! h.finish();
//! ```
//!
//! Results print to stderr as they complete and are written as JSON to
//! `target/uu-bench/<suite>.json` (override the directory with
//! `UU_BENCH_DIR`). The JSON is stable, diff-friendly, and contains the raw
//! samples so downstream tooling can recompute any statistic.
//!
//! ## Environment
//!
//! * `UU_BENCH_SAMPLES` — number of timed samples per benchmark;
//! * `UU_BENCH_WARMUP_MS` — calibration/warmup duration per benchmark;
//! * `UU_BENCH_DIR` — output directory for the JSON report.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Tunable knobs for a bench run.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Warmup/calibration time per benchmark.
    pub warmup_ms: u64,
    /// Number of timed samples collected per benchmark.
    pub samples: usize,
    /// Target wall time per sample; calibration picks the iteration count
    /// per sample to approximate it.
    pub target_sample_ms: f64,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            warmup_ms: 200,
            samples: 15,
            target_sample_ms: 10.0,
        }
    }
}

impl BenchOptions {
    /// Defaults with `UU_BENCH_SAMPLES` / `UU_BENCH_WARMUP_MS` applied.
    pub fn from_env() -> Self {
        let mut o = BenchOptions::default();
        if let Some(n) = env_u64("UU_BENCH_SAMPLES") {
            o.samples = (n as usize).max(3);
        }
        if let Some(ms) = env_u64("UU_BENCH_WARMUP_MS") {
            o.warmup_ms = ms;
        }
        o
    }
}

fn env_u64(key: &str) -> Option<u64> {
    let v = std::env::var(key).ok()?;
    match v.trim().parse() {
        Ok(n) => Some(n),
        Err(_) => panic!("{key} must be an integer, got {v:?}"),
    }
}

/// Timing results of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (e.g. `"pass/sccp/8"`).
    pub name: String,
    /// Iterations per timed sample (chosen by calibration).
    pub iters_per_sample: u64,
    /// Per-iteration wall time of each sample, in nanoseconds.
    pub samples_ns: Vec<f64>,
    /// Work units performed per iteration (e.g. simulated warp
    /// instructions), for throughput reporting; `0` means "not a
    /// throughput benchmark".
    pub units_per_iter: u64,
}

impl BenchResult {
    /// Median per-iteration time in nanoseconds; `0.0` when no samples
    /// were collected (an aborted or zero-sample run must serialize as a
    /// defined value, not panic on an out-of-bounds index).
    pub fn median_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let mut v = self.samples_ns.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            0.5 * (v[n / 2 - 1] + v[n / 2])
        }
    }

    /// Fastest per-iteration sample in nanoseconds; `0.0` when empty.
    pub fn min_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Slowest per-iteration sample in nanoseconds; `0.0` when empty.
    pub fn max_ns(&self) -> f64 {
        self.samples_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Mean per-iteration time in nanoseconds; `0.0` when empty (the
    /// `sum / len` form used to return NaN, which poisons every JSON
    /// consumer downstream).
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    /// Median throughput in work units per second; `0.0` for
    /// non-throughput benchmarks or empty sample sets.
    pub fn units_per_sec(&self) -> f64 {
        let med = self.median_ns();
        if self.units_per_iter == 0 || med <= 0.0 {
            return 0.0;
        }
        self.units_per_iter as f64 / (med * 1e-9)
    }
}

/// A bench suite in progress. Create with [`Harness::new`], register
/// benchmarks with [`Harness::bench`] / [`Harness::bench_batched`], then
/// call [`Harness::finish`] to write the JSON report.
pub struct Harness {
    suite: String,
    opts: BenchOptions,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Start a suite named `suite` with environment-derived options.
    pub fn new(suite: &str) -> Self {
        eprintln!("uu-bench suite '{suite}'");
        Harness {
            suite: suite.to_string(),
            opts: BenchOptions::from_env(),
            results: Vec::new(),
        }
    }

    /// Start a suite with explicit options (ignores the environment).
    pub fn with_options(suite: &str, opts: BenchOptions) -> Self {
        Harness {
            suite: suite.to_string(),
            opts,
            results: Vec::new(),
        }
    }

    /// Benchmark a routine. The closure runs repeatedly; its return value
    /// is passed through [`black_box`] so the work is not optimized away.
    pub fn bench<R>(&mut self, name: &str, mut routine: impl FnMut() -> R) {
        self.bench_batched(name, || (), move |()| routine());
    }

    /// Benchmark a routine that consumes fresh per-iteration state.
    /// `setup` runs outside the timed region (use it to clone inputs the
    /// routine mutates); only `routine` is timed.
    pub fn bench_batched<S, R>(
        &mut self,
        name: &str,
        setup: impl FnMut() -> S,
        routine: impl FnMut(S) -> R,
    ) {
        self.bench_batched_units(name, 0, setup, routine);
    }

    /// Like [`Harness::bench_batched`], but records that each iteration
    /// performs `units_per_iter` work units (e.g. simulated warp
    /// instructions), so the report carries a units-per-second throughput.
    pub fn bench_batched_units<S, R>(
        &mut self,
        name: &str,
        units_per_iter: u64,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        // Warmup + calibration: run until the warmup budget elapses,
        // measuring per-iteration cost.
        let warmup = Duration::from_millis(self.opts.warmup_ms);
        let t0 = Instant::now();
        let mut warm_iters = 0u64;
        let mut warm_ns = 0.0f64;
        while warm_iters == 0 || t0.elapsed() < warmup {
            let state = setup();
            let t = Instant::now();
            black_box(routine(state));
            warm_ns += t.elapsed().as_nanos() as f64;
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter_ns = (warm_ns / warm_iters as f64).max(1.0);
        let iters_per_sample =
            ((self.opts.target_sample_ms * 1e6 / per_iter_ns) as u64).clamp(1, 1_000_000);

        let mut samples_ns = Vec::with_capacity(self.opts.samples);
        for _ in 0..self.opts.samples {
            let mut total_ns = 0.0f64;
            for _ in 0..iters_per_sample {
                let state = setup();
                let t = Instant::now();
                black_box(routine(state));
                total_ns += t.elapsed().as_nanos() as f64;
            }
            samples_ns.push(total_ns / iters_per_sample as f64);
        }

        self.push_result(BenchResult {
            name: name.to_string(),
            iters_per_sample,
            samples_ns,
            units_per_iter,
        });
    }

    /// Record an externally measured result (e.g. a synthetic aggregate
    /// over other results), printing it like a measured benchmark.
    pub fn push_result(&mut self, r: BenchResult) {
        let units = if r.units_per_iter > 0 {
            format!("  {:.2} Munits/s", r.units_per_sec() / 1e6)
        } else {
            String::new()
        };
        eprintln!(
            "  {:<44} {:>12}  ({} .. {}, {} samples x {} iters){units}",
            r.name,
            fmt_ns(r.median_ns()),
            fmt_ns(r.min_ns()),
            fmt_ns(r.max_ns()),
            r.samples_ns.len(),
            r.iters_per_sample,
        );
        self.results.push(r);
    }

    /// Results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serialize the suite's results as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"suite\": \"{}\",\n", escape(&self.suite)));
        s.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"name\": \"{}\", ", escape(&r.name)));
            s.push_str(&format!("\"iters_per_sample\": {}, ", r.iters_per_sample));
            s.push_str(&format!("\"median_ns\": {:.1}, ", r.median_ns()));
            s.push_str(&format!("\"min_ns\": {:.1}, ", r.min_ns()));
            s.push_str(&format!("\"mean_ns\": {:.1}, ", r.mean_ns()));
            s.push_str(&format!("\"units_per_iter\": {}, ", r.units_per_iter));
            s.push_str(&format!("\"units_per_sec\": {:.1}, ", r.units_per_sec()));
            s.push_str("\"samples_ns\": [");
            for (j, x) in r.samples_ns.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("{x:.1}"));
            }
            s.push_str("]}");
            s.push_str(if i + 1 < self.results.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Print the summary and write `target/uu-bench/<suite>.json` (or
    /// `$UU_BENCH_DIR/<suite>.json`).
    pub fn finish(self) {
        let dir = std::env::var("UU_BENCH_DIR").unwrap_or_else(|_| "target/uu-bench".to_string());
        let json = self.to_json();
        let path = std::path::Path::new(&dir).join(format!("{}.json", self.suite));
        // Atomic: write a sibling temp file, then rename — a killed run
        // never leaves truncated JSON behind.
        let tmp = std::path::Path::new(&dir).join(format!(".{}.json.tmp", self.suite));
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|_| std::fs::write(&tmp, &json))
            .and_then(|_| std::fs::rename(&tmp, &path))
        {
            eprintln!("uu-bench: could not write {}: {e}", path.display());
        } else {
            eprintln!("uu-bench: wrote {}", path.display());
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> BenchOptions {
        BenchOptions {
            warmup_ms: 1,
            samples: 3,
            target_sample_ms: 0.05,
        }
    }

    #[test]
    fn collects_samples_and_serializes() {
        let mut h = Harness::with_options("selftest", tiny_opts());
        h.bench("sum", || (0..100u64).sum::<u64>());
        h.bench_batched(
            "sort",
            || vec![5u32, 3, 1, 4, 2],
            |mut v| {
                v.sort();
                v
            },
        );
        assert_eq!(h.results().len(), 2);
        for r in h.results() {
            assert_eq!(r.samples_ns.len(), 3);
            assert!(r.median_ns() > 0.0);
            assert!(r.min_ns() <= r.median_ns());
            assert!(r.median_ns() <= r.max_ns());
        }
        let json = h.to_json();
        assert!(json.contains("\"suite\": \"selftest\""));
        assert!(json.contains("\"name\": \"sum\""));
        assert!(json.contains("\"samples_ns\": ["));
    }

    #[test]
    fn empty_sample_sets_have_defined_statistics() {
        let r = BenchResult {
            name: "empty".into(),
            iters_per_sample: 1,
            samples_ns: Vec::new(),
            units_per_iter: 7,
        };
        assert_eq!(r.median_ns(), 0.0, "median must not index out of bounds");
        assert_eq!(r.mean_ns(), 0.0, "mean must not be NaN");
        assert_eq!(r.min_ns(), 0.0);
        assert_eq!(r.max_ns(), 0.0);
        assert_eq!(r.units_per_sec(), 0.0, "throughput must not divide by 0");
    }

    #[test]
    fn units_yield_throughput() {
        let r = BenchResult {
            name: "t".into(),
            iters_per_sample: 1,
            samples_ns: vec![1000.0, 1000.0, 1000.0], // 1 µs per iter
            units_per_iter: 500,
        };
        // 500 units per microsecond = 5e8 units/s.
        assert!((r.units_per_sec() - 5e8).abs() < 1.0);
        let mut h = Harness::with_options("units", tiny_opts());
        h.bench_batched_units("work", 100, || (), |()| (0..100u64).sum::<u64>());
        let json = h.to_json();
        assert!(json.contains("\"units_per_iter\": 100"));
        assert!(json.contains("\"units_per_sec\": "));
    }

    #[test]
    fn empty_result_serializes_without_nan() {
        let mut h = Harness::with_options("empty", tiny_opts());
        h.results.push(BenchResult {
            name: "none".into(),
            iters_per_sample: 1,
            samples_ns: Vec::new(),
            units_per_iter: 0,
        });
        let json = h.to_json();
        assert!(!json.contains("NaN"), "JSON must stay numeric: {json}");
        assert!(json.contains("\"median_ns\": 0.0"));
    }

    #[test]
    fn json_escapes_quotes() {
        let mut h = Harness::with_options("q", tiny_opts());
        h.bench("odd\"name", || 1u32);
        assert!(h.to_json().contains("odd\\\"name"));
    }
}

//! Random case generation and shrinking.
//!
//! [`Gen`] is the minimal contract a fuzzable input type must satisfy:
//! generate a random instance from an [`Rng`], and (optionally) propose a
//! list of strictly simpler candidates for shrinking. The runner
//! ([`crate::runner::check`]) drives generation from per-case seeds and
//! applies greedy shrinking: it repeatedly replaces a failing input by the
//! first shrink candidate that still fails, until no candidate fails or the
//! iteration budget runs out.
//!
//! Unlike `proptest`'s strategy combinators, shrinking here is a plain
//! method on the input type — simpler, fully deterministic, and sufficient
//! for the structured kernel specs this workspace fuzzes.

use crate::rng::Rng;

/// A type that can be randomly generated and (optionally) shrunk.
pub trait Gen: Sized + Clone + std::fmt::Debug {
    /// Produce a random instance.
    fn generate(rng: &mut Rng) -> Self;

    /// Propose strictly simpler candidate inputs, most aggressive first.
    /// An empty list means the value cannot shrink further.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

impl Gen for bool {
    fn generate(rng: &mut Rng) -> Self {
        rng.gen_bool()
    }

    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! gen_uint {
    ($($t:ty),*) => {$(
        impl Gen for $t {
            fn generate(rng: &mut Rng) -> Self {
                rng.next_u64() as $t
            }

            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                for c in [0, *self / 2, self.saturating_sub(1)] {
                    if c != *self && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}
gen_uint!(u8, u16, u32, u64, usize);

macro_rules! gen_int {
    ($($t:ty),*) => {$(
        impl Gen for $t {
            fn generate(rng: &mut Rng) -> Self {
                rng.next_u64() as $t
            }

            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                for c in [0, *self / 2, *self - self.signum()] {
                    if c != *self && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}
gen_int!(i8, i16, i32, i64);

impl<T: Gen> Gen for Vec<T> {
    fn generate(rng: &mut Rng) -> Self {
        let len = rng.gen_range_usize(0, 9);
        (0..len).map(|_| T::generate(rng)).collect()
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = Vec::new();
        if self.is_empty() {
            return out;
        }
        // Structural reductions first: empty, first half, drop one end.
        out.push(Vec::new());
        if self.len() > 1 {
            out.push(self[..self.len() / 2].to_vec());
            out.push(self[..self.len() - 1].to_vec());
            out.push(self[1..].to_vec());
        }
        // Then element-wise shrinks, one position at a time.
        for (i, x) in self.iter().enumerate() {
            for cand in x.shrink() {
                let mut v = self.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

impl<A: Gen, B: Gen> Gen for (A, B) {
    fn generate(rng: &mut Rng) -> Self {
        (A::generate(rng), B::generate(rng))
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink() {
            out.push((a, self.1.clone()));
        }
        for b in self.1.shrink() {
            out.push((self.0.clone(), b));
        }
        out
    }
}

impl<A: Gen, B: Gen, C: Gen> Gen for (A, B, C) {
    fn generate(rng: &mut Rng) -> Self {
        (A::generate(rng), B::generate(rng), C::generate(rng))
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink() {
            out.push((a, self.1.clone(), self.2.clone()));
        }
        for b in self.1.shrink() {
            out.push((self.0.clone(), b, self.2.clone()));
        }
        for c in self.2.shrink() {
            out.push((self.0.clone(), self.1.clone(), c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_shrink_descends_to_zero() {
        let mut v: i64 = 1000;
        let mut steps = 0;
        while let Some(next) = v.shrink().first().copied() {
            assert!(next.abs() < v.abs());
            v = next;
            steps += 1;
            assert!(steps < 100);
        }
        assert_eq!(v, 0);
    }

    #[test]
    fn vec_shrink_proposes_empty_first() {
        let v: Vec<u8> = vec![3, 4, 5];
        let cands = v.shrink();
        assert_eq!(cands[0], Vec::<u8>::new());
        assert!(cands.iter().all(|c| c != &v));
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<(u8, i64, bool)> = {
            let mut rng = Rng::seed_from_u64(9);
            (0..32).map(|_| Gen::generate(&mut rng)).collect()
        };
        let b: Vec<(u8, i64, bool)> = {
            let mut rng = Rng::seed_from_u64(9);
            (0..32).map(|_| Gen::generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}

//! The checked-in regression corpus.
//!
//! `crates/check/corpus/*.seed` holds one [`KernelSpec`] per file in a
//! line-oriented `key = value` format — the historical counterexamples of
//! this repo (originally `proptest-regressions/` hashes, now stored as the
//! shrunk specs themselves so they replay without any external tooling).
//! `tests/properties.rs` re-runs every corpus entry through the
//! [`crate::oracle::DiffOracle`] before fuzzing novel cases.
//!
//! ## Growing the corpus
//!
//! When a fuzz run fails, the report prints the shrunk `KernelSpec`; its
//! [`Display`](std::fmt::Display) form *is* the corpus format. Save it as
//! `crates/check/corpus/<short-description>.seed` and the counterexample
//! replays on every future `cargo test`.
//!
//! Missing keys default (empty op lists, zeros, `false`), so historical
//! seeds survive the spec gaining new fields.

use crate::oracle::KernelSpec;
use std::path::PathBuf;

/// Location of the corpus directory inside the repo.
pub fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Parse an op list of the form `[(0, 1, 2), (3, 0, 1)]`.
fn parse_ops(s: &str) -> Result<Vec<(u8, u8, u8)>, String> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("op list must be bracketed, got {s:?}"))?
        .trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for tuple in inner.split(')') {
        let tuple = tuple.trim().trim_start_matches(',').trim();
        if tuple.is_empty() {
            continue;
        }
        let tuple = tuple
            .strip_prefix('(')
            .ok_or_else(|| format!("malformed op tuple in {s:?}"))?;
        let parts: Vec<&str> = tuple.split(',').map(str::trim).collect();
        if parts.len() != 3 {
            return Err(format!("op tuple must have 3 fields, got {tuple:?}"));
        }
        let nums: Result<Vec<u8>, _> = parts.iter().map(|p| p.parse::<u8>()).collect();
        let nums = nums.map_err(|e| format!("bad op number in {tuple:?}: {e}"))?;
        out.push((nums[0], nums[1], nums[2]));
    }
    Ok(out)
}

/// Parse one corpus file's text into a [`KernelSpec`].
///
/// # Errors
///
/// Reports the offending line on unknown keys or malformed values.
pub fn parse_spec(text: &str) -> Result<KernelSpec, String> {
    let mut spec = KernelSpec {
        bound: 0,
        straight_ops: Vec::new(),
        arm_ops: Vec::new(),
        else_ops: Vec::new(),
        cond_sel: 0,
        divergent: false,
        input_a: 0,
        inner_trip: 0,
    };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`, got {line:?}", lineno + 1))?;
        let (key, value) = (key.trim(), value.trim());
        let err = |e: String| format!("line {} ({key}): {e}", lineno + 1);
        match key {
            "bound" => spec.bound = value.parse().map_err(|e| err(format!("{e}")))?,
            "straight_ops" => spec.straight_ops = parse_ops(value).map_err(err)?,
            "arm_ops" => spec.arm_ops = parse_ops(value).map_err(err)?,
            "else_ops" => spec.else_ops = parse_ops(value).map_err(err)?,
            "cond_sel" => spec.cond_sel = value.parse().map_err(|e| err(format!("{e}")))?,
            "divergent" => spec.divergent = value.parse().map_err(|e| err(format!("{e}")))?,
            "input_a" => spec.input_a = value.parse().map_err(|e| err(format!("{e}")))?,
            "inner_trip" => spec.inner_trip = value.parse().map_err(|e| err(format!("{e}")))?,
            other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
        }
    }
    if spec.straight_ops.is_empty() {
        // The generator guarantees at least one straight-line op; give
        // defaulted historical seeds the same shape.
        spec.straight_ops.push((0, 0, 0));
    }
    Ok(spec)
}

/// Load every `*.seed` file in the corpus directory, sorted by file name.
/// Panics on unreadable or malformed entries — a corrupt corpus must fail
/// loudly, not silently skip regressions.
pub fn load_corpus() -> Vec<(String, KernelSpec)> {
    let dir = corpus_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read corpus dir {}: {e}", dir.display()))
        .map(|entry| entry.expect("corpus dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "seed"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("<non-utf8>")
                .to_string();
            let text = std::fs::read_to_string(&p)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display()));
            let spec = parse_spec(&text)
                .unwrap_or_else(|e| panic!("malformed corpus entry {}: {e}", p.display()));
            (name, spec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_spec() {
        let text = "\
# a comment
bound = 7
straight_ops = [(0, 1, 2), (6, 3, 3)]
arm_ops = [(2, 0, 0)]
else_ops = []
cond_sel = 2
divergent = true
input_a = -4
inner_trip = 1
";
        let spec = parse_spec(text).unwrap();
        assert_eq!(spec.bound, 7);
        assert_eq!(spec.straight_ops, vec![(0, 1, 2), (6, 3, 3)]);
        assert_eq!(spec.arm_ops, vec![(2, 0, 0)]);
        assert!(spec.else_ops.is_empty());
        assert_eq!(spec.cond_sel, 2);
        assert!(spec.divergent);
        assert_eq!(spec.input_a, -4);
        assert_eq!(spec.inner_trip, 1);
    }

    #[test]
    fn missing_keys_default() {
        let spec = parse_spec("bound = 2\n").unwrap();
        assert_eq!(spec.bound, 2);
        assert_eq!(spec.straight_ops, vec![(0, 0, 0)]);
        assert!(!spec.divergent);
        assert_eq!(spec.inner_trip, 0);
    }

    #[test]
    fn rejects_unknown_keys_and_garbage() {
        assert!(parse_spec("frobnicate = 3\n").is_err());
        assert!(parse_spec("bound\n").is_err());
        assert!(parse_spec("straight_ops = [(1, 2)]\n").is_err());
    }

    #[test]
    fn checked_in_corpus_loads() {
        let corpus = load_corpus();
        assert!(
            corpus.len() >= 2,
            "expected the historical proptest regressions to be present"
        );
        for (name, spec) in &corpus {
            assert!(!spec.straight_ops.is_empty(), "{name}");
        }
    }
}

//! The combined *unroll & unmerge* transformation (paper §III-A3).
//!
//! u&u first unrolls the loop, then unmerges the whole unrolled body, so
//! that every control-flow path through `factor` consecutive iterations
//! becomes a separate, straight-line chain of blocks — giving subsequent
//! optimizations the full provenance of every condition evaluated along the
//! way (Figure 4 / Figure 5 of the paper).
//!
//! Loop-nest policy (paper §III-C): when applied to an outer loop, inner
//! loops are *unmerged but not unrolled* by default; they are duplicated
//! wholesale when they sit on an unmerged path. Setting
//! [`UuOptions::unroll_nested_inner`] unrolls them too (the paper's
//! configuration option).

use crate::unmerge::{unmerge_loop, UnmergeOptions, UnmergeStats};
use crate::unroll::unroll_loop;
use uu_analysis::{convergence, DomTree, LoopForest, LoopId};
use uu_ir::{BlockId, Function, LoopPragma};

/// Options for one u&u application.
#[derive(Debug, Clone, Copy)]
pub struct UuOptions {
    /// Unroll factor; `1` means unmerge-only (the paper's *unmerge*
    /// configuration).
    pub factor: u32,
    /// Unmerge cascade options.
    pub unmerge: UnmergeOptions,
    /// Unroll inner loops of a nest too (off by default, as in the paper).
    pub unroll_nested_inner: bool,
    /// *Runtime-unrolled u&u* (the paper's §VI future work): when the loop
    /// is a recognizable affine loop, use runtime unrolling (checkless main
    /// loop + epilogue) instead of while-style unrolling before unmerging,
    /// so the transformed loop keeps one exit check per `factor`
    /// iterations. Falls back to while-style unrolling otherwise.
    pub runtime_main: bool,
}

impl Default for UuOptions {
    fn default() -> Self {
        UuOptions {
            factor: 2,
            unmerge: UnmergeOptions::default(),
            unroll_nested_inner: false,
            runtime_main: false,
        }
    }
}

/// What one u&u application did.
#[derive(Debug, Clone, Copy, Default)]
pub struct UuOutcome {
    /// Whether the loop was transformed at all.
    pub applied: bool,
    /// Whether unrolling succeeded (false for factor 1 or canonicalization
    /// failure).
    pub unrolled: bool,
    /// Aggregate unmerge statistics (outer + inner loops).
    pub unmerge: UnmergeStats,
}

/// Apply u&u to the loop headed at `header`.
///
/// Returns a default (non-applied) outcome when the loop does not exist,
/// contains convergent operations, or cannot be canonicalized. On success
/// the header is tagged [`LoopPragma::NoUnroll`] so the baseline unroller
/// leaves the transformed loop alone — reproducing the paper's observed
/// interaction on *coordinates* (including our pass inhibits LLVM's own
/// unrolling of the loop).
pub fn uu_loop(f: &mut Function, header: BlockId, opts: &UuOptions) -> UuOutcome {
    let mut outcome = UuOutcome::default();
    let dom = DomTree::compute(f);
    let forest = LoopForest::compute(f, &dom);
    let Some(lid) = find_loop(&forest, header) else {
        return outcome;
    };
    if convergence::loop_has_convergent(f, &forest, lid) {
        return outcome;
    }

    // 1. Handle descendants innermost-first: unmerge (and optionally unroll).
    let mut inner_headers: Vec<(BlockId, u32)> = forest
        .loops()
        .iter()
        .enumerate()
        .filter(|&(i, _)| LoopId(i) != lid && is_descendant(&forest, LoopId(i), lid))
        .map(|(_, l)| (l.header, l.depth))
        .collect();
    // Deepest first.
    inner_headers.sort_by_key(|(_, d)| std::cmp::Reverse(*d));
    for (ih, _) in inner_headers {
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        let Some(ilid) = find_loop(&forest, ih) else {
            continue;
        };
        if convergence::loop_has_convergent(f, &forest, ilid) {
            continue;
        }
        let il = forest.get(ilid).clone();
        if opts.unroll_nested_inner && opts.factor >= 2
            && unroll_loop(f, il.header, &il.blocks, &il.latches, opts.factor).is_some() {
                outcome.unrolled = true;
            }
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        if let Some(ilid) = find_loop(&forest, ih) {
            let il = forest.get(ilid).clone();
            let st = unmerge_loop(f, il.header, &il.blocks, opts.unmerge);
            merge_stats(&mut outcome.unmerge, st);
        }
    }

    // 2. Unroll the target loop (runtime-unrolled when requested and the
    // loop shape allows; while-style otherwise).
    if opts.factor >= 2 {
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        if let Some(lid) = find_loop(&forest, header) {
            let l = forest.get(lid).clone();
            let mut done = false;
            if opts.runtime_main {
                done = crate::runtime_unroll::runtime_unroll(
                    f, l.header, &l.blocks, &l.latches, opts.factor,
                );
            }
            if done {
                outcome.unrolled = true;
            } else if unroll_loop(f, l.header, &l.blocks, &l.latches, opts.factor).is_some() {
                outcome.unrolled = true;
            }
        }
    }

    // 3. Unmerge the (possibly unrolled) target loop body.
    let dom = DomTree::compute(f);
    let forest = LoopForest::compute(f, &dom);
    if let Some(lid) = find_loop(&forest, header) {
        let l = forest.get(lid).clone();
        let st = unmerge_loop(f, l.header, &l.blocks, opts.unmerge);
        merge_stats(&mut outcome.unmerge, st);
    }

    outcome.applied = outcome.unrolled || outcome.unmerge.nodes_duplicated > 0;
    if outcome.applied {
        f.set_loop_pragma(header, LoopPragma::NoUnroll);
    }
    outcome
}

fn merge_stats(acc: &mut UnmergeStats, s: UnmergeStats) {
    acc.nodes_duplicated += s.nodes_duplicated;
    acc.blocks_cloned += s.blocks_cloned;
    acc.hit_limit |= s.hit_limit;
}

fn find_loop(forest: &LoopForest, header: BlockId) -> Option<LoopId> {
    forest
        .loops()
        .iter()
        .position(|l| l.header == header)
        .map(LoopId)
}

/// Whether `candidate` (a parent pointer) transitively reaches `ancestor`.
fn is_descendant(forest: &LoopForest, mut candidate: LoopId, ancestor: LoopId) -> bool {
    while candidate.0 != usize::MAX && candidate.0 < forest.len() {
        if candidate == ancestor {
            return true;
        }
        candidate = forest
            .get(candidate)
            .parent
            .unwrap_or(LoopId(usize::MAX));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unmerge::UnmergeMode;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type, Value};

    /// The bezier-style loop: two sequential triangles in the body.
    fn bezier_like() -> (uu_ir::Function, BlockId) {
        let mut f = uu_ir::Function::new(
            "bz",
            vec![Param::new("n", Type::I64), Param::new("k0", Type::I64)],
            Type::I64,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let t1 = b.create_block();
        let m1 = b.create_block();
        let t2 = b.create_block();
        let m2 = b.create_block(); // latch
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let nn = b.phi(Type::I64);
        let kn = b.phi(Type::I64);
        b.add_phi_incoming(nn, entry, Value::Arg(0));
        b.add_phi_incoming(kn, entry, Value::Arg(1));
        let c0 = b.icmp(ICmpPred::Sge, nn, Value::imm(1i64));
        b.cond_br(c0, t1, exit);
        b.switch_to(t1);
        let c1 = b.icmp(ICmpPred::Sgt, kn, Value::imm(1i64));
        b.cond_br(c1, t2, m1);
        b.switch_to(t2);
        let kn1 = b.sub(kn, Value::imm(1i64));
        b.br(m1);
        b.switch_to(m1);
        let knm = b.phi(Type::I64);
        b.add_phi_incoming(knm, t1, kn);
        b.add_phi_incoming(knm, t2, kn1);
        b.br(m2);
        b.switch_to(m2);
        let nn1 = b.sub(nn, Value::imm(1i64));
        b.add_phi_incoming(nn, m2, nn1);
        b.add_phi_incoming(kn, m2, knm);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(kn));
        (f, h)
    }

    #[test]
    fn uu_factor2_applies_and_verifies() {
        let (mut f, h) = bezier_like();
        uu_ir::verify_function(&f).unwrap();
        let before = f.num_blocks();
        let out = uu_loop(&mut f, h, &UuOptions::default());
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        assert!(out.applied);
        assert!(out.unrolled);
        assert!(out.unmerge.nodes_duplicated > 0);
        assert!(f.num_blocks() > before);
        // The header is tagged so the baseline unroller skips it.
        assert_eq!(f.loop_pragma(h), Some(uu_ir::LoopPragma::NoUnroll));
    }

    #[test]
    fn factor1_is_unmerge_only() {
        let (mut f, h) = bezier_like();
        let out = uu_loop(
            &mut f,
            h,
            &UuOptions {
                factor: 1,
                ..Default::default()
            },
        );
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        assert!(out.applied);
        assert!(!out.unrolled);
        assert!(out.unmerge.nodes_duplicated > 0);
    }

    #[test]
    fn whole_path_removes_all_body_merges() {
        let (mut f, h) = bezier_like();
        uu_loop(
            &mut f,
            h,
            &UuOptions {
                factor: 2,
                unmerge: UnmergeOptions {
                    mode: UnmergeMode::WholePath,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        let l = forest
            .loops()
            .iter()
            .find(|l| l.header == h)
            .expect("loop survives");
        let preds = f.predecessors();
        for &b in &l.blocks {
            if b == h {
                continue;
            }
            assert!(
                preds[b.index()].len() <= 1,
                "merge block {b} survived u&u:\n{f}"
            );
        }
    }

    #[test]
    fn convergent_loop_is_skipped() {
        let mut f = uu_ir::Function::new("cv", vec![Param::new("n", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.syncthreads();
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        let out = uu_loop(&mut f, h, &UuOptions::default());
        assert!(!out.applied);
        assert_eq!(f.loop_pragma(h), None);
    }

    /// Runtime-unrolled u&u (future-work extension): the affine loop gets a
    /// checkless main body that is then unmerged.
    #[test]
    fn runtime_main_uses_checkless_unroll() {
        let (mut f, h) = bezier_like();
        let out = uu_loop(
            &mut f,
            h,
            &UuOptions {
                factor: 4,
                runtime_main: true,
                ..Default::default()
            },
        );
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        assert!(out.applied);
        assert!(out.unrolled);
        // Two loops now exist: the unmerged main and the epilogue.
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.len(), 2, "{f}");
    }

    /// Selective unmerging skips phi-free merges, keeping duplication lower
    /// than whole-path mode.
    #[test]
    fn selective_unmerge_contains_duplication() {
        let run = |mode| {
            let (mut f, h) = bezier_like();
            let o = uu_loop(
                &mut f,
                h,
                &UuOptions {
                    factor: 2,
                    unmerge: UnmergeOptions {
                        mode,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
            o.unmerge.blocks_cloned
        };
        let whole = run(UnmergeMode::WholePath);
        let selective = run(UnmergeMode::Selective);
        assert!(selective <= whole, "selective {selective} vs whole {whole}");
        assert!(selective > 0, "phi-bearing merges must still duplicate");
    }

    /// Nested loops: the inner loop is unmerged but NOT unrolled by default.
    #[test]
    fn nest_policy_unmerges_inner_without_unrolling() {
        let mut f = uu_ir::Function::new(
            "nest",
            vec![Param::new("n", Type::I64), Param::new("c", Type::I1)],
            Type::Void,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let oh = b.create_block();
        let ih = b.create_block();
        let it = b.create_block();
        let im = b.create_block(); // inner merge (latch of inner)
        let ol = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(oh);
        b.switch_to(oh);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let ci = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(ci, ih, exit);
        b.switch_to(ih);
        let j = b.phi(Type::I64);
        b.add_phi_incoming(j, oh, Value::imm(0i64));
        let cj = b.icmp(ICmpPred::Slt, j, Value::Arg(0));
        b.cond_br(cj, it, ol);
        b.switch_to(it);
        b.cond_br(Value::Arg(1), im, im);
        b.switch_to(im);
        let j1 = b.add(j, Value::imm(1i64));
        b.add_phi_incoming(j, im, j1);
        b.br(ih);
        b.switch_to(ol);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, ol, i1);
        b.br(oh);
        b.switch_to(exit);
        b.ret(None);
        uu_ir::verify_function(&f).unwrap();
        let out = uu_loop(&mut f, oh, &UuOptions::default());
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        assert!(out.applied);
        // The outer loop was unrolled: it now has two inner-loop headers
        // (the original + the copy), i.e. two nested loops in the forest.
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        let inner_count = forest.loops().iter().filter(|l| l.depth == 2).count();
        assert_eq!(inner_count, 2, "{f}");
    }
}

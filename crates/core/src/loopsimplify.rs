//! Loop canonicalization: preheader, single latch, dedicated exits, LCSSA.
//!
//! Mirrors LLVM's `LoopSimplify` + `LCSSA` passes, which the paper's u&u
//! `LoopPass` (like every LLVM loop pass) runs after. The unroll and unmerge
//! transforms in this crate require the canonical form:
//!
//! * a *preheader*: the unique out-of-loop predecessor of the header;
//! * a single *latch* carrying the only back edge;
//! * *dedicated exits*: every exit block's predecessors are all inside the
//!   loop;
//! * *LCSSA*: every value defined in the loop and used outside flows through
//!   a phi in an exit block, so that cloning iterations only ever needs to
//!   patch exit phis.

use crate::clone::remove_phi_incomings_from;
use std::collections::HashSet;
use uu_ir::{BlockId, Function, Inst, InstId, InstKind, Type, Value};
use uu_analysis::DomTree;

/// A loop in canonical form, with the block ids the transforms need.
#[derive(Debug, Clone)]
pub struct CanonicalLoop {
    /// Loop header.
    pub header: BlockId,
    /// Unique predecessor of the header from outside the loop.
    pub preheader: BlockId,
    /// The single block carrying the back edge.
    pub latch: BlockId,
    /// Dedicated exit blocks (every predecessor inside the loop).
    pub exits: Vec<BlockId>,
    /// All loop blocks (header and latch included), sorted.
    pub blocks: Vec<BlockId>,
}

impl CanonicalLoop {
    /// Whether `b` is a loop block.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }
}

/// Bring the loop with the given header/blocks/latches into canonical form.
///
/// Returns `None` if LCSSA rewriting hits a shape it cannot handle (an
/// outside use not dominated by a unique exit phi) — callers must then skip
/// transforming this loop, exactly as a conservative LLVM pass would.
pub fn canonicalize_loop(
    f: &mut Function,
    header: BlockId,
    blocks: &[BlockId],
    latches: &[BlockId],
) -> Option<CanonicalLoop> {
    let mut loop_blocks: HashSet<BlockId> = blocks.iter().copied().collect();

    // --- 1. preheader ---
    let preds = f.predecessors();
    let outside_preds: Vec<BlockId> = preds[header.index()]
        .iter()
        .copied()
        .filter(|p| !loop_blocks.contains(p))
        .collect();
    let preheader = if outside_preds.len() == 1 && f.successors(outside_preds[0]) == vec![header] {
        outside_preds[0]
    } else {
        insert_merging_pred(f, header, &outside_preds)
    };

    // --- 2. single latch ---
    let mut my_latches: Vec<BlockId> = latches.to_vec();
    my_latches.sort();
    my_latches.dedup();
    let latch = if my_latches.len() == 1 {
        my_latches[0]
    } else {
        let l = insert_merging_pred(f, header, &my_latches);
        loop_blocks.insert(l);
        l
    };

    // --- 3. dedicated exits ---
    let mut exits: Vec<BlockId> = Vec::new();
    loop {
        let preds = f.predecessors();
        let mut raw_exits: Vec<BlockId> = Vec::new();
        for &b in &loop_blocks {
            for s in f.successors(b) {
                if !loop_blocks.contains(&s) && !raw_exits.contains(&s) {
                    raw_exits.push(s);
                }
            }
        }
        raw_exits.sort();
        let mut changed = false;
        exits.clear();
        for x in raw_exits {
            let has_outside_pred = preds[x.index()]
                .iter()
                .any(|p| !loop_blocks.contains(p));
            if has_outside_pred {
                let inside: Vec<BlockId> = preds[x.index()]
                    .iter()
                    .copied()
                    .filter(|p| loop_blocks.contains(p))
                    .collect();
                let dx = insert_merging_pred(f, x, &inside);
                exits.push(dx);
                changed = true;
            } else {
                exits.push(x);
            }
        }
        if !changed {
            break;
        }
    }

    // --- 4. LCSSA ---
    let mut sorted_blocks: Vec<BlockId> = loop_blocks.iter().copied().collect();
    sorted_blocks.sort();
    let cl = CanonicalLoop {
        header,
        preheader,
        latch,
        exits,
        blocks: sorted_blocks,
    };
    if !rewrite_lcssa(f, &cl) {
        return None;
    }
    Some(cl)
}

/// Insert a new block `m` between `preds` and `target`: all edges
/// `p → target` (p ∈ preds) are retargeted to `m`, which branches to
/// `target`. Phi incomings in `target` from those preds are merged into a
/// phi placed in `m`. Returns `m`.
fn insert_merging_pred(f: &mut Function, target: BlockId, preds: &[BlockId]) -> BlockId {
    let m = f.add_block();
    // Retarget terminators.
    for &p in preds {
        let t = f.terminator(p).expect("predecessor must have a terminator");
        f.inst_mut(t).kind.replace_block(target, m);
    }
    // Merge phi incomings.
    for phi in f.phis(target) {
        let ty = f.inst(phi).ty;
        let mut moved: Vec<(BlockId, Value)> = Vec::new();
        if let InstKind::Phi { incomings } = &f.inst(phi).kind {
            for (b, v) in incomings {
                if preds.contains(b) {
                    moved.push((*b, *v));
                }
            }
        }
        if moved.is_empty() {
            continue;
        }
        let merged: Value = if moved.len() == 1 && preds.len() == 1 {
            moved[0].1
        } else {
            let np = f.prepend_inst(m, Inst::new(InstKind::Phi { incomings: moved }, ty));
            Value::Inst(np)
        };
        if let InstKind::Phi { incomings } = &mut f.inst_mut(phi).kind {
            incomings.retain(|(b, _)| !preds.contains(b));
            incomings.push((m, merged));
        }
    }
    // Terminator of m.
    f.append_inst(m, Inst::new(InstKind::Br { target }, Type::Void));
    m
}

/// Rewrite the function into LCSSA form for loop `cl`. Returns `false` when
/// an outside use cannot be assigned a unique dominating exit phi.
fn rewrite_lcssa(f: &mut Function, cl: &CanonicalLoop) -> bool {
    let dom = DomTree::compute(f);
    let loop_set: HashSet<BlockId> = cl.blocks.iter().copied().collect();
    // Collect values defined inside the loop.
    let mut defs: Vec<(InstId, BlockId)> = Vec::new();
    for &b in &cl.blocks {
        for &i in &f.block(b).insts {
            if f.inst(i).ty != Type::Void {
                defs.push((i, b));
            }
        }
    }
    let preds = f.predecessors();
    for (def, def_block) in defs {
        // Find outside uses: (user inst, block where the use "happens").
        let mut outside_uses: Vec<(InstId, BlockId, Option<BlockId>)> = Vec::new();
        for &ub in f.layout() {
            if loop_set.contains(&ub) {
                continue;
            }
            for &u in &f.block(ub).insts {
                match &f.inst(u).kind {
                    InstKind::Phi { incomings } => {
                        for (p, v) in incomings {
                            if *v == Value::Inst(def) && !loop_set.contains(p) {
                                outside_uses.push((u, *p, Some(*p)));
                            }
                        }
                    }
                    k => {
                        let mut used = false;
                        k.for_each_operand(|v| {
                            if *v == Value::Inst(def) {
                                used = true;
                            }
                        });
                        if used {
                            outside_uses.push((u, ub, None));
                        }
                    }
                }
            }
        }
        if outside_uses.is_empty() {
            continue;
        }
        // Insert exit phis where the def is available.
        let ty = f.inst(def).ty;
        let mut exit_phis: Vec<(BlockId, InstId)> = Vec::new();
        for &x in &cl.exits {
            let in_preds: Vec<BlockId> = preds[x.index()]
                .iter()
                .copied()
                .filter(|p| loop_set.contains(p))
                .collect();
            if in_preds.is_empty() {
                continue;
            }
            if !in_preds.iter().all(|p| dom.dominates(def_block, *p)) {
                continue;
            }
            // Reuse an existing LCSSA phi for this def if present.
            let existing = f.phis(x).into_iter().find(|&p| {
                matches!(&f.inst(p).kind, InstKind::Phi { incomings }
                    if incomings.iter().all(|(_, v)| *v == Value::Inst(def)))
            });
            let phi = match existing {
                Some(p) => p,
                None => {
                    let incomings = in_preds.iter().map(|p| (*p, Value::Inst(def))).collect();
                    f.prepend_inst(x, Inst::new(InstKind::Phi { incomings }, ty))
                }
            };
            exit_phis.push((x, phi));
        }
        // Rewrite each outside use to the deepest dominating exit phi.
        for (user, use_block, phi_pred) in outside_uses {
            // Skip the exit phis we just created.
            if exit_phis.iter().any(|(_, p)| *p == user) {
                continue;
            }
            let mut candidates: Vec<BlockId> = exit_phis
                .iter()
                .map(|(x, _)| *x)
                .filter(|x| dom.dominates(*x, use_block))
                .collect();
            if candidates.is_empty() {
                return false;
            }
            // Deepest = dominated by all the others.
            candidates.sort_by(|a, b| {
                if dom.dominates(*a, *b) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            });
            let chosen = *candidates.last().unwrap();
            if !candidates.iter().all(|c| dom.dominates(*c, chosen)) {
                return false;
            }
            let phi = exit_phis.iter().find(|(x, _)| *x == chosen).unwrap().1;
            match phi_pred {
                Some(pp) => {
                    if let InstKind::Phi { incomings } = &mut f.inst_mut(user).kind {
                        for (p, v) in incomings {
                            if *p == pp && *v == Value::Inst(def) {
                                *v = Value::Inst(phi);
                            }
                        }
                    }
                }
                None => {
                    let mut kind = f.inst(user).kind.clone();
                    kind.for_each_operand_mut(|v| {
                        if *v == Value::Inst(def) {
                            *v = Value::Inst(phi);
                        }
                    });
                    f.inst_mut(user).kind = kind;
                }
            }
        }
    }
    // Suppress unused-import warning path: remove_phi_incomings_from is used
    // by sibling modules; keep the import local to the crate.
    let _ = remove_phi_incomings_from;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_analysis::{DomTree, LoopForest, LoopId};
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type};

    /// Loop whose exit block is also reachable from entry (non-dedicated),
    /// with two latches, whose counter is returned after the loop.
    fn messy_loop() -> uu_ir::Function {
        let mut f = uu_ir::Function::new(
            "m",
            vec![Param::new("n", Type::I64), Param::new("c", Type::I1)],
            Type::I64,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block(); // 1
        let l1 = b.create_block(); // 2
        let l2 = b.create_block(); // 3
        let exit = b.create_block(); // 4 (shared with entry path)
        b.switch_to(entry);
        b.cond_br(Value::Arg(1), h, exit);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, l1, exit);
        b.switch_to(l1);
        let i1 = b.add(i, Value::imm(1i64));
        b.cond_br(Value::Arg(1), l2, h);
        b.add_phi_incoming(i, l1, i1);
        b.switch_to(l2);
        let i2 = b.add(i1, Value::imm(1i64));
        b.add_phi_incoming(i, l2, i2);
        b.br(h);
        b.switch_to(exit);
        let r = b.phi(Type::I64);
        b.add_phi_incoming(r, entry, Value::imm(-1i64));
        // The phi incoming from inside the loop is a use of `i` that LCSSA
        // must reroute once the exit edge gets a dedicated block.
        b.add_phi_incoming(r, h, i);
        let s = b.add(r, Value::imm(1i64));
        b.ret(Some(s));
        f
    }

    #[test]
    fn canonicalizes_messy_loop() {
        let mut f = messy_loop();
        uu_ir::verify_function(&f).unwrap();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.len(), 1);
        let l = forest.get(LoopId(0));
        let cl = canonicalize_loop(
            &mut f,
            l.header,
            &l.blocks.clone(),
            &l.latches.clone(),
        )
        .expect("canonicalizable");
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        // Preheader exists, has single successor = header.
        assert_eq!(f.successors(cl.preheader), vec![cl.header]);
        // Single latch whose only successor is the header.
        assert_eq!(f.successors(cl.latch), vec![cl.header]);
        // Header now has exactly two preds: preheader + latch.
        let preds = f.predecessors();
        let mut hp = preds[cl.header.index()].clone();
        hp.sort();
        let mut expect = vec![cl.preheader, cl.latch];
        expect.sort();
        assert_eq!(hp, expect);
        // Exits are dedicated.
        for &x in &cl.exits {
            for p in &preds[x.index()] {
                assert!(cl.contains(*p), "exit {x} has outside pred {p}");
            }
        }
        // The loop counter flows through an exit phi (LCSSA).
        let dom2 = DomTree::compute(&f);
        let _ = dom2;
    }

    #[test]
    fn already_canonical_is_untouched_shape() {
        // entry->h, body latch, exit dedicated, return via phi-free const.
        let mut f = uu_ir::Function::new("c", vec![Param::new("n", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        let before_blocks = f.num_blocks();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        let l = forest.get(LoopId(0));
        let cl = canonicalize_loop(&mut f, l.header, &l.blocks.clone(), &l.latches.clone())
            .unwrap();
        uu_ir::verify_function(&f).unwrap();
        assert_eq!(f.num_blocks(), before_blocks);
        assert_eq!(cl.preheader, entry);
        assert_eq!(cl.latch, body);
        assert_eq!(cl.exits, vec![exit]);
    }

    #[test]
    fn lcssa_inserts_exit_phi_for_live_out() {
        let mut f = uu_ir::Function::new("lo", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i)); // direct use of header phi outside the loop
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        let l = forest.get(LoopId(0));
        canonicalize_loop(&mut f, l.header, &l.blocks.clone(), &l.latches.clone()).unwrap();
        uu_ir::verify_function(&f).unwrap();
        // The return value must now be an exit phi, not the header phi.
        let phis = f.phis(exit);
        assert_eq!(phis.len(), 1);
        let term = f.terminator(exit).unwrap();
        match &f.inst(term).kind {
            InstKind::Ret { value } => assert_eq!(*value, Some(Value::Inst(phis[0]))),
            _ => unreachable!(),
        }
    }

    /// Loops whose live-outs cannot be routed through a unique dominating
    /// exit phi are declined (the conservative bail the transforms rely on).
    #[test]
    fn lcssa_bails_on_ambiguous_live_out_paths() {
        // Loop with two exits whose continuations *merge*, both using the
        // loop counter: neither exit phi dominates the merged use.
        let mut f = uu_ir::Function::new(
            "amb",
            vec![Param::new("n", Type::I64), Param::new("c", Type::I1)],
            Type::I64,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit1 = b.create_block();
        let exit2 = b.create_block();
        let join = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit1);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.cond_br(Value::Arg(1), h, exit2);
        b.switch_to(exit1);
        b.br(join);
        b.switch_to(exit2);
        b.br(join);
        b.switch_to(join);
        // Use `i` here: dominated by neither exit alone.
        let r = b.add(i, Value::imm(0i64));
        b.ret(Some(r));
        // NB: `i` does not dominate join through exit2's path... actually it
        // does dominate (header dominates everything); the *exit phis* are
        // what cannot be assigned uniquely.
        uu_ir::verify_function(&f).unwrap();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        let l = forest.get(LoopId(0)).clone();
        let got = canonicalize_loop(&mut f, l.header, &l.blocks, &l.latches);
        assert!(got.is_none(), "ambiguous live-out must decline");
    }

    use uu_ir::Value;
}

//! The u&u profitability heuristic (paper §III-C).
//!
//! For each loop, estimate the post-transform size with
//! `f(p, s, u) = Σ_{i=0}^{u-1} p^i · s` (paths `p`, size `s`, factor `u`)
//! and transform with the **largest** `u ≤ u_max` satisfying
//! `f(p, s, u) < c`. Nests are visited innermost first; an outer loop is
//! only transformed when no loop nested inside it was. Loops with explicit
//! unroll pragmas or convergent operations are skipped. The optional
//! *divergence guard* (the paper's proposed future work, §V) additionally
//! skips loops with thread-dependent branches.

use crate::unmerge::UnmergeOptions;
use crate::uu::{uu_loop, UuOptions};
use uu_analysis::{
    convergence, cost, count_loop_paths, loop_has_divergent_branch, uu_size_estimate, Divergence,
    DomTree, LoopForest, LoopId,
};
use uu_ir::{BlockId, Function};

/// Heuristic parameters. The paper's evaluation uses `c = 1024`,
/// `u_max = 8`.
#[derive(Debug, Clone, Copy)]
pub struct HeuristicOptions {
    /// Upper bound on the estimated post-transform loop size.
    pub c: u64,
    /// Maximum unroll factor considered.
    pub u_max: u32,
    /// Skip loops whose branches depend on the thread id (§V extension).
    pub divergence_guard: bool,
    /// Unmerge options forwarded to the transform.
    pub unmerge: UnmergeOptions,
}

impl Default for HeuristicOptions {
    fn default() -> Self {
        HeuristicOptions {
            c: 1024,
            u_max: 8,
            divergence_guard: false,
            unmerge: UnmergeOptions::default(),
        }
    }
}

/// Why the heuristic accepted or declined a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Transformed with the given factor.
    Applied(u32),
    /// Estimated size exceeded `c` even at factor 2.
    TooLarge,
    /// Contains a convergent operation.
    Convergent,
    /// User pragma forbids touching the loop.
    Pragma,
    /// Divergence guard fired.
    Divergent,
    /// A nested loop was already transformed.
    InnerTransformed,
}

/// Per-loop record of the heuristic's reasoning.
#[derive(Debug, Clone)]
pub struct LoopDecision {
    /// Header of the inspected loop.
    pub header: BlockId,
    /// Estimated path count `p`.
    pub paths: u64,
    /// Estimated size `s`.
    pub size: u64,
    /// Outcome.
    pub decision: Decision,
}

/// Run the heuristic over every loop of `f`, applying u&u where profitable.
/// Returns the per-loop decisions in visit (innermost-first) order.
pub fn run_heuristic(f: &mut Function, opts: &HeuristicOptions) -> Vec<LoopDecision> {
    let mut decisions: Vec<LoopDecision> = Vec::new();
    let mut visited: Vec<BlockId> = Vec::new();
    let mut transformed: Vec<BlockId> = Vec::new();
    loop {
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        let div = if opts.divergence_guard {
            Some(Divergence::compute(f))
        } else {
            None
        };
        // Pick the next unvisited loop, innermost first.
        let next = forest
            .innermost_first()
            .into_iter()
            .find(|id| !visited.contains(&forest.get(*id).header));
        let Some(id) = next else { break };
        let l = forest.get(id).clone();
        visited.push(l.header);

        let paths = count_loop_paths(f, &forest, id);
        let size = cost::loop_size(f, &forest, id);
        let record = |d: Decision| LoopDecision {
            header: l.header,
            paths,
            size,
            decision: d,
        };

        if has_transformed_descendant(&forest, id, &transformed) {
            decisions.push(record(Decision::InnerTransformed));
            continue;
        }
        if f.loop_pragma(l.header).is_some() {
            decisions.push(record(Decision::Pragma));
            continue;
        }
        if convergence::loop_has_convergent(f, &forest, id) {
            decisions.push(record(Decision::Convergent));
            continue;
        }
        if let Some(div) = &div {
            if loop_has_divergent_branch(f, &forest, id, div) {
                decisions.push(record(Decision::Divergent));
                continue;
            }
        }
        // Largest factor u in [2, u_max] with f(p, s, u) < c.
        let factor = (2..=opts.u_max)
            .rev()
            .find(|&u| uu_size_estimate(paths, size, u) < opts.c);
        match factor {
            None => decisions.push(record(Decision::TooLarge)),
            Some(u) => {
                let out = uu_loop(
                    f,
                    l.header,
                    &UuOptions {
                        factor: u,
                        unmerge: opts.unmerge,
                        ..Default::default()
                    },
                );
                if out.applied {
                    transformed.push(l.header);
                    decisions.push(record(Decision::Applied(u)));
                } else {
                    decisions.push(record(Decision::TooLarge));
                }
            }
        }
    }
    decisions
}

fn has_transformed_descendant(
    forest: &LoopForest,
    id: LoopId,
    transformed: &[BlockId],
) -> bool {
    forest.loops().iter().enumerate().any(|(i, l)| {
        if LoopId(i) == id || !transformed.contains(&l.header) {
            return false;
        }
        // Is loop i nested (transitively) inside `id`?
        let mut cur = l.parent;
        while let Some(p) = cur {
            if p == id {
                return true;
            }
            cur = forest.get(p).parent;
        }
        false
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type, Value};

    /// Small branchy loop (2 paths, tiny size): heuristic should take the
    /// max factor 8.
    fn small_branchy() -> (uu_ir::Function, BlockId) {
        let mut f = uu_ir::Function::new(
            "sb",
            vec![Param::new("n", Type::I64), Param::new("c", Type::I1)],
            Type::I64,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let t = b.create_block();
        let m = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, t, exit);
        b.switch_to(t);
        b.cond_br(Value::Arg(1), m, m);
        b.switch_to(m);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, m, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        (f, h)
    }

    #[test]
    fn picks_largest_feasible_factor() {
        let (mut f, h) = small_branchy();
        let ds = run_heuristic(&mut f, &HeuristicOptions::default());
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].header, h);
        assert_eq!(ds[0].paths, 2);
        // p=2, s≈6: f(2,6,8) = 6*(2^8-1) = 1530 ≥ 1024; f at 7 = 762 < 1024.
        assert_eq!(ds[0].decision, Decision::Applied(7), "{ds:?}");
    }

    #[test]
    fn declines_oversized_loops() {
        let (mut f, _h) = small_branchy();
        let ds = run_heuristic(
            &mut f,
            &HeuristicOptions {
                c: 10, // absurdly tight budget
                ..Default::default()
            },
        );
        assert_eq!(ds[0].decision, Decision::TooLarge);
    }

    #[test]
    fn respects_pragma() {
        let (mut f, h) = small_branchy();
        f.set_loop_pragma(h, uu_ir::LoopPragma::Unroll(4));
        let ds = run_heuristic(&mut f, &HeuristicOptions::default());
        assert_eq!(ds[0].decision, Decision::Pragma);
    }

    #[test]
    fn divergence_guard_skips_tid_loops() {
        // Branch condition derived from the thread id.
        let mut f = uu_ir::Function::new("dv", vec![Param::new("n", Type::I64)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let t = b.create_block();
        let m = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        let gid = b.global_thread_id();
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, gid);
        let c = b.icmp(ICmpPred::Sgt, i, Value::imm(0i64));
        b.cond_br(c, t, exit);
        b.switch_to(t);
        let bit = b.and(i, Value::imm(1i64));
        let odd = b.icmp(ICmpPred::Ne, bit, Value::imm(0i64));
        b.cond_br(odd, m, m);
        b.switch_to(m);
        let i1 = b.ashr(i, Value::imm(1i64));
        b.add_phi_incoming(i, m, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        uu_ir::verify_function(&f).unwrap();
        let guarded = run_heuristic(
            &mut f.clone(),
            &HeuristicOptions {
                divergence_guard: true,
                ..Default::default()
            },
        );
        assert_eq!(guarded[0].decision, Decision::Divergent);
        let unguarded = run_heuristic(&mut f, &HeuristicOptions::default());
        assert!(matches!(unguarded[0].decision, Decision::Applied(_)));
    }

    #[test]
    fn outer_skipped_when_inner_transformed() {
        // Nest where the inner loop is accepted: outer must be declined
        // with InnerTransformed.
        let mut f = uu_ir::Function::new(
            "nest",
            vec![Param::new("n", Type::I64), Param::new("c", Type::I1)],
            Type::Void,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let oh = b.create_block();
        let ih = b.create_block();
        let it = b.create_block();
        let im = b.create_block();
        let ol = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(oh);
        b.switch_to(oh);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let ci = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(ci, ih, exit);
        b.switch_to(ih);
        let j = b.phi(Type::I64);
        b.add_phi_incoming(j, oh, Value::imm(0i64));
        let cj = b.icmp(ICmpPred::Slt, j, Value::Arg(0));
        b.cond_br(cj, it, ol);
        b.switch_to(it);
        b.cond_br(Value::Arg(1), im, im);
        b.switch_to(im);
        let j1 = b.add(j, Value::imm(1i64));
        b.add_phi_incoming(j, im, j1);
        b.br(ih);
        b.switch_to(ol);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, ol, i1);
        b.br(oh);
        b.switch_to(exit);
        b.ret(None);
        let ds = run_heuristic(&mut f, &HeuristicOptions::default());
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        assert_eq!(ds.len(), 2);
        assert!(matches!(ds[0].decision, Decision::Applied(_)), "{ds:?}");
        assert_eq!(ds[1].decision, Decision::InnerTransformed, "{ds:?}");
    }
}

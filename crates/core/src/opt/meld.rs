//! Control-flow melding: the DARM-style dual of unmerging.
//!
//! Where the paper's u&u pass *splits* merged control flow so each path can
//! specialize, DARM (Saumya, Pattnaik, Kulkarni — "DARM: Control-Flow
//! Melding for SIMT Thread Divergence Reduction", CGO 2022) does the dual:
//! it *melds* the two arms of a divergent if-then-else into one predicated
//! path so a warp no longer serializes both sides. This pass reproduces the
//! core of that transform on our IR so the two philosophies can be run
//! head-to-head (see the harness `study` subcommand):
//!
//! 1. **Detection** — diamonds `b → {T, F} → J` whose branch condition is
//!    divergence-tainted per [`uu_analysis::Divergence`]. Uniform branches
//!    are left alone: melding them buys nothing (no warp ever splits) and
//!    costs straight-line work.
//! 2. **Alignment** — a longest-common-subsequence alignment of the two
//!    arms' instruction sequences over *instruction classes* (opcode +
//!    result type, DARM's §IV-B region alignment collapsed to the
//!    straight-line case our diamonds produce).
//! 3. **Legality** — arms must be phi-free, convergent-free, and small;
//!    every memory instruction must align with a partner of the same class
//!    (an unmatched store would execute unconditionally after melding, and
//!    an unmatched load would speculate an address the program never
//!    dereferences). Unaligned *pure* instructions are safe to speculate:
//!    the simulator's arithmetic is total (division by zero yields zero).
//! 4. **Melding** — aligned pairs merge into a single instruction; operand
//!    pairs that disagree after renaming are reconciled with
//!    `select cond, tOperand, fOperand` (DARM's blend at the value level).
//!    Unaligned instructions are hoisted as-is. Join phis collapse to
//!    selects, the branch becomes unconditional, and the arms die.
//!
//! The pass runs under the guarded pass manager as configurations `meld`
//! and `uu+meld` (see [`crate::pipeline::Transform`]).

use super::Pass;
use std::collections::HashMap;
use uu_analysis::{Divergence, DomTree, LoopForest};
use uu_ir::{BlockId, Function, Inst, InstId, InstKind, Value};

/// Maximum number of non-terminator instructions per arm. DARM bounds
/// region size for compile time; we bound it because the LCS table is
/// quadratic and melding huge arms trades too much straight-line work.
const MAX_ARM_INSTS: usize = 32;

/// The control-flow melding pass (whole function).
#[derive(Debug, Default, Clone, Copy)]
pub struct Meld;

impl Pass for Meld {
    fn name(&self) -> &'static str {
        "meld"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        meld_function(f)
    }
}

/// Meld every legal divergent diamond in the function. Returns whether
/// anything changed.
pub fn meld_function(f: &mut Function) -> bool {
    meld_driver(f, &|f| f.layout().to_vec())
}

/// Meld legal divergent diamonds whose branch block lies inside the loop
/// with the given `header` (the unit the per-loop sweep machinery selects).
/// Returns whether anything changed.
pub fn meld_loop(f: &mut Function, header: BlockId) -> bool {
    meld_driver(f, &|f| {
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        forest
            .loops()
            .iter()
            .find(|l| l.header == header)
            .map(|l| l.blocks.clone())
            .unwrap_or_default()
    })
}

/// Fixpoint driver: each round recomputes divergence (melding rewrites the
/// CFG, which can change taint), asks `candidates` for the blocks to scan,
/// and melds the first legal diamond. Rescans until no diamond melds.
fn meld_driver(f: &mut Function, candidates: &dyn Fn(&Function) -> Vec<BlockId>) -> bool {
    let mut changed = false;
    loop {
        let div = Divergence::compute(f);
        let mut round = false;
        for b in candidates(f) {
            if !f.is_linked(b) {
                continue;
            }
            if try_meld(f, b, &div) {
                round = true;
                changed = true;
                break; // CFG changed; recompute analyses and rescan
            }
        }
        if !round {
            break;
        }
    }
    changed
}

/// The non-terminator body of an arm, provided the arm is meldable in
/// isolation: terminated by an unconditional branch, phi-free,
/// convergent-free, and within the size bound.
fn arm_body(f: &Function, b: BlockId) -> Option<Vec<InstId>> {
    let insts = &f.block(b).insts;
    if insts.len() > MAX_ARM_INSTS + 1 {
        return None;
    }
    let mut body = Vec::new();
    for (i, &id) in insts.iter().enumerate() {
        let kind = &f.inst(id).kind;
        if i + 1 == insts.len() {
            if !matches!(kind, InstKind::Br { .. }) {
                return None;
            }
            continue;
        }
        if kind.is_phi() || kind.is_convergent() || kind.is_terminator() {
            return None;
        }
        body.push(id);
    }
    Some(body)
}

/// Whether two instructions belong to the same meldable class: same opcode
/// (including predicate / intrinsic / GEP scale immediates) and same result
/// type. Class equality is what the alignment maximizes; operand
/// disagreements are reconciled later with selects.
fn same_class(f: &Function, a: InstId, b: InstId) -> bool {
    let (ia, ib) = (f.inst(a), f.inst(b));
    if ia.ty != ib.ty {
        return false;
    }
    match (&ia.kind, &ib.kind) {
        (InstKind::Bin { op: oa, .. }, InstKind::Bin { op: ob, .. }) => oa == ob,
        (InstKind::ICmp { pred: pa, .. }, InstKind::ICmp { pred: pb, .. }) => pa == pb,
        (InstKind::FCmp { pred: pa, .. }, InstKind::FCmp { pred: pb, .. }) => pa == pb,
        (InstKind::Select { .. }, InstKind::Select { .. }) => true,
        (InstKind::Cast { op: oa, .. }, InstKind::Cast { op: ob, .. }) => oa == ob,
        (InstKind::Load { .. }, InstKind::Load { .. }) => true,
        (InstKind::Store { ptr: _, value: va }, InstKind::Store { ptr: _, value: vb }) => {
            // Access width is the stored value's type.
            f.value_type(*va) == f.value_type(*vb)
        }
        (InstKind::Gep { scale: sa, .. }, InstKind::Gep { scale: sb, .. }) => sa == sb,
        (InstKind::Intr { which: wa, .. }, InstKind::Intr { which: wb, .. }) => wa == wb,
        _ => false,
    }
}

/// One step of the melded instruction schedule.
enum AlignOp {
    /// Aligned pair `(t, f)` melds into one instruction.
    Pair(InstId, InstId),
    /// Unaligned true-arm instruction, speculated as-is.
    GapT(InstId),
    /// Unaligned false-arm instruction, speculated as-is.
    GapF(InstId),
}

/// Longest-common-subsequence alignment of the two arms over instruction
/// classes, returned as a forward schedule. Classic quadratic DP; arms are
/// bounded by [`MAX_ARM_INSTS`].
fn align(f: &Function, at: &[InstId], af: &[InstId]) -> Vec<AlignOp> {
    let (n, m) = (at.len(), af.len());
    // dp[i][j] = LCS length of at[i..] vs af[j..].
    let mut dp = vec![0u16; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[idx(i, j)] = if same_class(f, at[i], af[j]) {
                dp[idx(i + 1, j + 1)] + 1
            } else {
                dp[idx(i + 1, j)].max(dp[idx(i, j + 1)])
            };
        }
    }
    let mut ops = Vec::with_capacity(n + m);
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if same_class(f, at[i], af[j]) && dp[idx(i, j)] == dp[idx(i + 1, j + 1)] + 1 {
            ops.push(AlignOp::Pair(at[i], af[j]));
            i += 1;
            j += 1;
        } else if dp[idx(i + 1, j)] >= dp[idx(i, j + 1)] {
            ops.push(AlignOp::GapT(at[i]));
            i += 1;
        } else {
            ops.push(AlignOp::GapF(af[j]));
            j += 1;
        }
    }
    ops.extend(at[i..].iter().map(|&t| AlignOp::GapT(t)));
    ops.extend(af[j..].iter().map(|&t| AlignOp::GapF(t)));
    ops
}

/// Legality over the schedule: every memory instruction must sit in an
/// aligned pair. A gap store would execute unconditionally after melding; a
/// gap load would dereference an address the original program only touches
/// on one path.
fn memory_ops_all_aligned(f: &Function, ops: &[AlignOp]) -> bool {
    ops.iter().all(|op| match op {
        AlignOp::Pair(..) => true,
        AlignOp::GapT(id) | AlignOp::GapF(id) => {
            let k = &f.inst(*id).kind;
            !k.reads_memory() && !k.writes_memory()
        }
    })
}

fn resolve(map: &HashMap<InstId, Value>, v: Value) -> Value {
    match v {
        Value::Inst(id) => map.get(&id).copied().unwrap_or(v),
        _ => v,
    }
}

/// Move `id` (already unlinked) to just before `b`'s terminator.
fn place_before_terminator(f: &mut Function, b: BlockId, id: InstId) {
    let pos = f.block(b).insts.len() - 1;
    f.block_mut(b).insts.insert(pos, id);
}

/// Try to meld the diamond branching at `b`. Returns whether it melded.
fn try_meld(f: &mut Function, b: BlockId, div: &Divergence) -> bool {
    let Some(t) = f.terminator(b) else {
        return false;
    };
    let InstKind::CondBr {
        cond,
        if_true,
        if_false,
    } = f.inst(t).kind
    else {
        return false;
    };
    if if_true == if_false || !div.is_divergent(cond) {
        return false;
    }
    // Diamond shape, as in if-conversion: b → {T, F} → J, J having exactly
    // those two predecessors and each arm belonging to this diamond alone.
    let preds = f.predecessors();
    let ts = f.successors(if_true);
    let fs = f.successors(if_false);
    let diamond = ts.len() == 1
        && fs.len() == 1
        && ts[0] == fs[0]
        && ts[0] != b
        && preds[if_true.index()] == vec![b]
        && preds[if_false.index()] == vec![b]
        && preds[ts[0].index()].len() == 2;
    if !diamond {
        return false;
    }
    let join = ts[0];
    let (Some(body_t), Some(body_f)) = (arm_body(f, if_true), arm_body(f, if_false)) else {
        return false;
    };
    let ops = align(f, &body_t, &body_f);
    if !memory_ops_all_aligned(f, &ops) {
        return false;
    }

    // Meld the schedule into b. True-arm instructions keep their identity
    // (they become the merged instruction of a pair), so only false-arm
    // results need renaming: map_f sends a matched F instruction to its
    // merged partner's value.
    let mut map_f: HashMap<InstId, Value> = HashMap::new();
    for op in &ops {
        match op {
            AlignOp::GapT(id) => {
                f.unlink_inst(if_true, *id);
                place_before_terminator(f, b, *id);
            }
            AlignOp::GapF(id) => {
                f.unlink_inst(if_false, *id);
                let mf = &map_f;
                f.inst_mut(*id).kind.for_each_operand_mut(|v| *v = resolve(mf, *v));
                place_before_terminator(f, b, *id);
            }
            AlignOp::Pair(ti, fi) => {
                // Operand-wise blend: where the two sides disagree after
                // renaming, insert `select cond, tOp, fOp` before the pair.
                let ops_t = f.inst(*ti).kind.operands();
                let ops_f: Vec<Value> = f
                    .inst(*fi)
                    .kind
                    .operands()
                    .into_iter()
                    .map(|v| resolve(&map_f, v))
                    .collect();
                let mut blended = Vec::with_capacity(ops_t.len());
                for (&vt, &vf) in ops_t.iter().zip(&ops_f) {
                    if vt == vf {
                        blended.push(vt);
                    } else {
                        let ty = f.value_type(vt);
                        let sel = f.create_inst(Inst::new(
                            InstKind::Select {
                                cond,
                                on_true: vt,
                                on_false: vf,
                            },
                            ty,
                        ));
                        place_before_terminator(f, b, sel);
                        blended.push(Value::Inst(sel));
                    }
                }
                f.unlink_inst(if_true, *ti);
                let mut k = 0;
                f.inst_mut(*ti).kind.for_each_operand_mut(|v| {
                    *v = blended[k];
                    k += 1;
                });
                place_before_terminator(f, b, *ti);
                map_f.insert(*fi, Value::Inst(*ti));
            }
        }
    }

    // Join phis collapse to selects (or to the shared value when both arms
    // agree after renaming).
    for phi in f.phis(join) {
        let (mut tv, mut fv) = (None, None);
        if let InstKind::Phi { incomings } = &f.inst(phi).kind {
            for (p, v) in incomings {
                if *p == if_true {
                    tv = Some(*v);
                }
                if *p == if_false {
                    fv = Some(*v);
                }
            }
        }
        let (Some(tv), Some(fv)) = (tv, fv) else {
            continue;
        };
        let fv = resolve(&map_f, fv);
        let merged = if tv == fv {
            tv
        } else {
            let ty = f.inst(phi).ty;
            let sel = f.create_inst(Inst::new(
                InstKind::Select {
                    cond,
                    on_true: tv,
                    on_false: fv,
                },
                ty,
            ));
            place_before_terminator(f, b, sel);
            Value::Inst(sel)
        };
        if let InstKind::Phi { incomings } = &mut f.inst_mut(phi).kind {
            incomings.retain(|(p, _)| *p != if_true && *p != if_false);
            incomings.push((b, merged));
        }
    }

    let t = f.terminator(b).unwrap();
    f.inst_mut(t).kind = InstKind::Br { target: join };
    f.remove_block(if_true);
    f.remove_block(if_false);
    crate::clone::resolve_trivial_phis(f, join);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, ICmpPred, Intrinsic, Param, Type};

    /// A diamond whose condition derives from `threadIdx.x`, with one
    /// aligned memory op per arm and a mismatched multiplier:
    /// `if (tid & 1) A[i] = x*2 else A[i] = x*3`.
    fn divergent_store_diamond() -> Function {
        let mut f = Function::new(
            "k",
            vec![Param::new("a", Type::Ptr), Param::new("x", Type::I64)],
            Type::Void,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let el = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        let tid = b.intr(Intrinsic::ThreadIdxX, vec![], Type::I32);
        let tid64 = b.cast(uu_ir::CastOp::Sext, tid, Type::I64);
        let bit = b.and(tid64, Value::imm(1i64));
        let odd = b.icmp(ICmpPred::Ne, bit, Value::imm(0i64));
        b.cond_br(odd, t, el);
        b.switch_to(t);
        let x2 = b.mul(Value::Arg(1), Value::imm(2i64));
        let p1 = b.gep(Value::Arg(0), tid64, 8);
        b.store(p1, x2);
        b.br(j);
        b.switch_to(el);
        let x3 = b.mul(Value::Arg(1), Value::imm(3i64));
        let p2 = b.gep(Value::Arg(0), tid64, 8);
        b.store(p2, x3);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        uu_ir::verify_function(&f).unwrap();
        f
    }

    fn count(f: &Function, pred: impl Fn(&InstKind) -> bool) -> usize {
        f.iter_insts().filter(|(_, i)| pred(&i.kind)).count()
    }

    #[test]
    fn divergent_diamond_with_aligned_stores_melds() {
        let mut f = divergent_store_diamond();
        assert!(meld_function(&mut f));
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        // One store survives, unconditional, fed by a select on the value.
        assert_eq!(count(&f, |k| matches!(k, InstKind::Store { .. })), 1, "{f}");
        assert_eq!(count(&f, |k| matches!(k, InstKind::CondBr { .. })), 0, "{f}");
        assert!(count(&f, |k| matches!(k, InstKind::Select { .. })) >= 1, "{f}");
        // The divergent branch is gone per the analysis too.
        let div = Divergence::compute(&f);
        assert_eq!(div_branches(&f, &div), 0, "{f}");
    }

    fn div_branches(f: &Function, div: &Divergence) -> usize {
        f.iter_insts()
            .filter(|(_, i)| match i.kind {
                InstKind::CondBr { cond, .. } => div.is_divergent(cond),
                _ => false,
            })
            .count()
    }

    #[test]
    fn uniform_diamond_is_left_alone() {
        // Same shape, but the condition derives from an argument: no warp
        // ever splits on it, so melding would only cost straight-line work.
        let mut f = Function::new(
            "k",
            vec![
                Param::new("a", Type::Ptr),
                Param::new("x", Type::I64),
                Param::new("n", Type::I64),
            ],
            Type::Void,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let el = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        let odd = b.icmp(ICmpPred::Ne, Value::Arg(2), Value::imm(0i64));
        b.cond_br(odd, t, el);
        b.switch_to(t);
        let x2 = b.mul(Value::Arg(1), Value::imm(2i64));
        b.store(Value::Arg(0), x2);
        b.br(j);
        b.switch_to(el);
        let x3 = b.mul(Value::Arg(1), Value::imm(3i64));
        b.store(Value::Arg(0), x3);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        uu_ir::verify_function(&f).unwrap();
        assert!(!meld_function(&mut f));
    }

    #[test]
    fn unmatched_store_rejects_the_diamond() {
        // True arm stores, false arm is pure: melding would make the store
        // unconditional.
        let mut f = Function::new(
            "k",
            vec![Param::new("a", Type::Ptr), Param::new("x", Type::I64)],
            Type::I64,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let el = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        let tid = b.intr(Intrinsic::ThreadIdxX, vec![], Type::I32);
        let tid64 = b.cast(uu_ir::CastOp::Sext, tid, Type::I64);
        let bit = b.and(tid64, Value::imm(1i64));
        let odd = b.icmp(ICmpPred::Ne, bit, Value::imm(0i64));
        b.cond_br(odd, t, el);
        b.switch_to(t);
        b.store(Value::Arg(0), Value::Arg(1));
        b.br(j);
        b.switch_to(el);
        let y = b.add(Value::Arg(1), Value::imm(1i64));
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I64);
        b.add_phi_incoming(p, t, Value::Arg(1));
        b.add_phi_incoming(p, el, y);
        b.ret(Some(p));
        uu_ir::verify_function(&f).unwrap();
        assert!(!meld_function(&mut f));
        assert_eq!(count(&f, |k| matches!(k, InstKind::CondBr { .. })), 1);
    }

    #[test]
    fn convergent_arm_rejects_the_diamond() {
        let mut f = Function::new("k", vec![Param::new("x", Type::I64)], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let el = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        let tid = b.intr(Intrinsic::ThreadIdxX, vec![], Type::I32);
        let tid64 = b.cast(uu_ir::CastOp::Sext, tid, Type::I64);
        let odd = b.icmp(ICmpPred::Ne, tid64, Value::imm(0i64));
        b.cond_br(odd, t, el);
        b.switch_to(t);
        b.syncthreads();
        b.br(j);
        b.switch_to(el);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        uu_ir::verify_function(&f).unwrap();
        assert!(!meld_function(&mut f));
    }

    #[test]
    fn gap_instructions_are_speculated_and_semantics_kept() {
        // Arms of different length: `x*2` vs `x*3+1`. The add is a gap
        // instruction; the muls align and blend their immediates.
        let mut f = Function::new("k", vec![Param::new("x", Type::I64)], Type::I64);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let el = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        let tid = b.intr(Intrinsic::ThreadIdxX, vec![], Type::I32);
        let tid64 = b.cast(uu_ir::CastOp::Sext, tid, Type::I64);
        let bit = b.and(tid64, Value::imm(1i64));
        let odd = b.icmp(ICmpPred::Ne, bit, Value::imm(0i64));
        b.cond_br(odd, t, el);
        b.switch_to(t);
        let x2 = b.mul(Value::Arg(0), Value::imm(2i64));
        b.br(j);
        b.switch_to(el);
        let x3 = b.mul(Value::Arg(0), Value::imm(3i64));
        let x31 = b.add(x3, Value::imm(1i64));
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I64);
        b.add_phi_incoming(p, t, x2);
        b.add_phi_incoming(p, el, x31);
        b.ret(Some(p));
        uu_ir::verify_function(&f).unwrap();
        assert!(meld_function(&mut f));
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        // One melded mul (immediates blended by a select), the speculated
        // add, and a select resolving the join phi.
        assert_eq!(count(&f, |k| matches!(k, InstKind::Bin { op: uu_ir::BinOp::Mul, .. })), 1, "{f}");
        assert_eq!(count(&f, |k| matches!(k, InstKind::Bin { op: uu_ir::BinOp::Add, .. })), 1, "{f}");
        assert_eq!(count(&f, |k| matches!(k, InstKind::CondBr { .. })), 0, "{f}");
    }

    #[test]
    fn melding_is_idempotent() {
        let mut f = divergent_store_diamond();
        assert!(meld_function(&mut f));
        let after = format!("{f}");
        assert!(!meld_function(&mut f));
        assert_eq!(after, format!("{f}"));
    }
}

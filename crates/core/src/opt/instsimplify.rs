//! Constant folding and algebraic instruction simplification.

use super::Pass;
use uu_ir::{BinOp, Constant, Function, ICmpPred, InstId, InstKind, SecondaryMap, Type, Value};

/// Folds constants and applies algebraic identities, replacing simplified
/// instructions by their value. Also canonicalizes commutative operations to
/// put constants on the right, which improves GVN hit rates.
#[derive(Debug, Default, Clone, Copy)]
pub struct InstSimplify;

impl Pass for InstSimplify {
    fn name(&self) -> &'static str {
        "instsimplify"
    }

    // Only rewrites and removes pure non-terminator instructions.
    fn preserves_cfg(&self) -> bool {
        true
    }

    fn run(&mut self, f: &mut Function) -> bool {
        // Instructions never move between blocks here, so one block-of map
        // serves every round (simplified instructions just drop out of the
        // next round's work list).
        let mut block_of = SecondaryMap::with_default(f.entry());
        for &b in f.layout() {
            for &i in &f.block(b).insts {
                block_of.set(i, b);
            }
        }
        let mut changed = false;
        loop {
            let mut round = false;
            let work: Vec<InstId> = f
                .layout()
                .to_vec()
                .iter()
                .flat_map(|b| f.block(*b).insts.clone())
                .collect();
            for id in work {
                // Canonicalize: constant to the RHS of commutative ops.
                if let InstKind::Bin { op, lhs, rhs } = f.inst(id).kind {
                    if op.is_commutative() && lhs.is_const() && !rhs.is_const() {
                        f.inst_mut(id).kind = InstKind::Bin {
                            op,
                            lhs: rhs,
                            rhs: lhs,
                        };
                        round = true;
                    }
                }
                if let Some(v) = simplify_inst(f, id) {
                    f.replace_all_uses(Value::Inst(id), v);
                    // Unlink the dead instruction from the block holding it.
                    f.unlink_inst(*block_of.get(id), id);
                    round = true;
                }
            }
            if !round {
                break;
            }
            changed = true;
        }
        changed
    }
}

/// Compute the simplified value of `id`, if any. Pure instructions only.
pub fn simplify_inst(f: &Function, id: InstId) -> Option<Value> {
    let inst = f.inst(id);
    // Full constant fold first.
    if let Some(c) = inst.fold() {
        return Some(Value::Const(c));
    }
    match &inst.kind {
        InstKind::Bin { op, lhs, rhs } => simplify_bin(f, *op, *lhs, *rhs, inst.ty),
        InstKind::ICmp { pred, lhs, rhs } => {
            if lhs == rhs {
                // x == x, x <= x ... decidable without knowing x.
                let r = matches!(
                    pred,
                    ICmpPred::Eq | ICmpPred::Sle | ICmpPred::Sge | ICmpPred::Ule | ICmpPred::Uge
                );
                return Some(Value::imm(r));
            }
            None
        }
        InstKind::Select {
            cond,
            on_true,
            on_false,
        } => {
            if on_true == on_false {
                return Some(*on_true);
            }
            if let Some(c) = cond.as_const().and_then(|c| c.as_bool()) {
                return Some(if c { *on_true } else { *on_false });
            }
            None
        }
        InstKind::Gep { base, index, scale } => {
            // gep p, 0 → p ; gep p, i x0 → p
            if *scale == 0 {
                return Some(*base);
            }
            if index.as_const().map(|c| c.is_zero()).unwrap_or(false) {
                return Some(*base);
            }
            None
        }
        _ => None,
    }
}

fn as_add(f: &Function, v: Value) -> Option<(Value, Value)> {
    if let Value::Inst(i) = v {
        if let InstKind::Bin {
            op: BinOp::Add,
            lhs,
            rhs,
        } = f.inst(i).kind
        {
            return Some((lhs, rhs));
        }
    }
    None
}

fn as_sub(f: &Function, v: Value) -> Option<(Value, Value)> {
    if let Value::Inst(i) = v {
        if let InstKind::Bin {
            op: BinOp::Sub,
            lhs,
            rhs,
        } = f.inst(i).kind
        {
            return Some((lhs, rhs));
        }
    }
    None
}

fn simplify_bin(f: &Function, op: BinOp, lhs: Value, rhs: Value, ty: Type) -> Option<Value> {
    let zero = || Value::Const(Constant::zero(ty));
    let rc = rhs.as_const();
    let is_rzero = rc.map(|c| c.is_zero()).unwrap_or(false);
    let is_rone = rc.map(|c| c.is_one()).unwrap_or(false);
    match op {
        BinOp::Add => {
            if is_rzero {
                return Some(lhs);
            }
            // (a - b) + b → a
            if let Some((a, b)) = as_sub(f, lhs) {
                if b == rhs {
                    return Some(a);
                }
            }
            if let Some((a, b)) = as_sub(f, rhs) {
                if b == lhs {
                    return Some(a);
                }
            }
            None
        }
        BinOp::Sub => {
            if is_rzero {
                return Some(lhs);
            }
            if lhs == rhs {
                return Some(zero());
            }
            // (a + b) - a → b ;  (a + b) - b → a
            if let Some((a, b)) = as_add(f, lhs) {
                if a == rhs {
                    return Some(b);
                }
                if b == rhs {
                    return Some(a);
                }
            }
            None
        }
        BinOp::Mul => {
            if is_rone {
                return Some(lhs);
            }
            if is_rzero {
                return Some(zero());
            }
            None
        }
        BinOp::SDiv | BinOp::UDiv => {
            if is_rone {
                return Some(lhs);
            }
            None
        }
        BinOp::And => {
            if is_rzero {
                return Some(zero());
            }
            if lhs == rhs {
                return Some(lhs);
            }
            if rc == Some(Constant::I1(true)) && ty == Type::I1 {
                return Some(lhs);
            }
            None
        }
        BinOp::Or => {
            if is_rzero {
                return Some(lhs);
            }
            if lhs == rhs {
                return Some(lhs);
            }
            None
        }
        BinOp::Xor => {
            if is_rzero {
                return Some(lhs);
            }
            if lhs == rhs {
                return Some(zero());
            }
            None
        }
        BinOp::Shl | BinOp::LShr | BinOp::AShr => {
            if is_rzero {
                return Some(lhs);
            }
            None
        }
        BinOp::FMul => {
            if is_rone {
                return Some(lhs);
            }
            None
        }
        BinOp::FDiv => {
            if is_rone {
                return Some(lhs);
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, Param};

    fn with_entry(params: Vec<Param>) -> (uu_ir::Function, uu_ir::BlockId) {
        let f = uu_ir::Function::new("t", params, Type::Void);
        let e = f.entry();
        (f, e)
    }

    #[test]
    fn folds_constants() {
        let (mut f, e) = with_entry(vec![Param::new("p", Type::Ptr)]);
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let x = b.add(Value::imm(2i64), Value::imm(3i64));
        let y = b.mul(x, Value::imm(4i64));
        b.store(Value::Arg(0), y);
        b.ret(None);
        assert!(InstSimplify.run(&mut f));
        // Store operand is now the constant 20.
        let st = f.block(e).insts[0];
        match &f.inst(st).kind {
            InstKind::Store { value, .. } => {
                assert_eq!(value.as_const().unwrap().as_i64(), Some(20))
            }
            _ => panic!("expected store first, got {f}"),
        }
        assert_eq!(f.block(e).insts.len(), 2); // store + ret
    }

    #[test]
    fn xsbench_pattern_add_sub() {
        // (lower + half) - lower → half
        let (mut f, e) = with_entry(vec![
            Param::new("lower", Type::I64),
            Param::new("half", Type::I64),
            Param::new("p", Type::Ptr),
        ]);
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let mid = b.add(Value::Arg(0), Value::Arg(1));
        let len = b.sub(mid, Value::Arg(0));
        b.store(Value::Arg(2), len);
        b.ret(None);
        assert!(InstSimplify.run(&mut f));
        let st = f
            .block(e)
            .insts
            .iter()
            .copied()
            .find(|i| f.inst(*i).kind.writes_memory())
            .unwrap();
        match &f.inst(st).kind {
            InstKind::Store { value, .. } => assert_eq!(*value, Value::Arg(1)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn identities() {
        let (mut f, e) = with_entry(vec![Param::new("x", Type::I64), Param::new("p", Type::Ptr)]);
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let a = b.add(Value::Arg(0), Value::imm(0i64)); // x
        let m = b.mul(a, Value::imm(1i64)); // x
        let s = b.sub(m, m); // 0
        let o = b.or(s, Value::Arg(0)); // canonicalized? or(0, x): lhs=s const after sub →
        b.store(Value::Arg(1), o);
        b.ret(None);
        assert!(InstSimplify.run(&mut f));
        let st = f
            .block(e)
            .insts
            .iter()
            .copied()
            .find(|i| f.inst(*i).kind.writes_memory())
            .unwrap();
        match &f.inst(st).kind {
            InstKind::Store { value, .. } => assert_eq!(*value, Value::Arg(0)),
            _ => unreachable!(),
        }
        assert_eq!(f.block(e).insts.len(), 2);
    }

    #[test]
    fn select_and_icmp_identities() {
        let (mut f, e) = with_entry(vec![
            Param::new("x", Type::I64),
            Param::new("c", Type::I1),
            Param::new("p", Type::Ptr),
        ]);
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let s = b.select(Value::Arg(1), Value::Arg(0), Value::Arg(0)); // x
        let c = b.icmp(ICmpPred::Sle, s, s); // true
        let s2 = b.select(c, Value::imm(1i64), Value::imm(2i64)); // 1
        b.store(Value::Arg(2), s2);
        b.ret(None);
        assert!(InstSimplify.run(&mut f));
        let st = f
            .block(e)
            .insts
            .iter()
            .copied()
            .find(|i| f.inst(*i).kind.writes_memory())
            .unwrap();
        match &f.inst(st).kind {
            InstKind::Store { value, .. } => {
                assert_eq!(value.as_const().unwrap().as_i64(), Some(1))
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn gep_identities() {
        let (mut f, e) = with_entry(vec![Param::new("p", Type::Ptr)]);
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let g = b.gep(Value::Arg(0), Value::imm(0i64), 8);
        let x = b.load(Type::F64, g);
        b.store(g, x);
        b.ret(None);
        assert!(InstSimplify.run(&mut f));
        let ld = f.block(e).insts[0];
        match &f.inst(ld).kind {
            InstKind::Load { ptr } => assert_eq!(*ptr, Value::Arg(0)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn no_change_reports_false() {
        let (mut f, e) = with_entry(vec![Param::new("x", Type::I64), Param::new("p", Type::Ptr)]);
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let y = b.add(Value::Arg(0), Value::imm(5i64));
        b.store(Value::Arg(1), y);
        b.ret(None);
        assert!(!InstSimplify.run(&mut f));
    }
}

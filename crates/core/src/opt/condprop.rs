//! Branch-condition propagation.
//!
//! Below the true edge of `br i1 %c, t, f` (when `t`'s only predecessor is
//! that branch), `%c` *is* true — SSA guarantees the value cannot change. The
//! pass substitutes the constant in the dominated region, plus the equality
//! fact when the condition is `icmp eq x, C` (resp. `ne` on the false edge).
//!
//! This is the optimizer's consumer of the provenance that unmerging
//! recovers: in Figure 5 of the paper, the `FT`/`TF`/`FF` loop copies avoid
//! re-evaluating conditions exactly because the re-evaluation (unified with
//! the original condition by GVN) is dominated by a conditional edge.

use super::Pass;
use uu_analysis::{AnalysisCache, DomTree};
use uu_ir::{BlockId, EntitySet, Function, ICmpPred, InstKind, Value};

/// The branch-condition propagation pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct CondProp;

impl Pass for CondProp {
    fn name(&self) -> &'static str {
        "condprop"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        self.run_with(f, &mut AnalysisCache::new())
    }

    // Only rewrites instruction operands (and `sdiv` → `lshr`).
    fn preserves_cfg(&self) -> bool {
        true
    }

    fn run_with(&mut self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
        let dom = cache.dominators(f);
        let preds = f.predecessors();
        let mut changed = false;
        for b in f.layout().to_vec() {
            let Some(t) = f.terminator(b) else { continue };
            let InstKind::CondBr {
                cond,
                if_true,
                if_false,
            } = f.inst(t).kind
            else {
                continue;
            };
            if if_true == if_false {
                continue;
            }
            let Value::Inst(cid) = cond else { continue };
            for (target, truth) in [(if_true, true), (if_false, false)] {
                // Edge-domination via single-predecessor check.
                if preds[target.index()].len() != 1 || preds[target.index()][0] != b {
                    continue;
                }
                changed |= replace_dominated_uses(f, &dom, cond, Value::imm(truth), target);
                // Equality facts: `x == C` true, or `x != C` false ⇒ x = C.
                if let InstKind::ICmp { pred, lhs, rhs } = f.inst(cid).kind {
                    let fact = match (pred, truth) {
                        (ICmpPred::Eq, true) | (ICmpPred::Ne, false) => Some((lhs, rhs)),
                        _ => None,
                    };
                    if let Some((x, y)) = fact {
                        match (x, y) {
                            (Value::Inst(_), Value::Const(_)) => {
                                changed |= replace_dominated_uses(f, &dom, x, y, target);
                            }
                            (Value::Const(_), Value::Inst(_)) => {
                                changed |= replace_dominated_uses(f, &dom, y, x, target);
                            }
                            _ => {}
                        }
                    }
                    // Range fact: `x > C` (C ≥ 0) known true ⇒ x is positive
                    // in the region, so `sdiv x, 2^k` is `lshr x, k` — the
                    // strength reduction behind the `shr` in the paper's
                    // XSBench PTX (Listings 4/5).
                    let positive = match (pred, truth) {
                        (ICmpPred::Sgt, true) | (ICmpPred::Sge, true) => rhs
                            .as_const()
                            .and_then(|c| c.as_i64())
                            .is_some_and(|c| c >= 0)
                            .then_some(lhs),
                        (ICmpPred::Sle, false) | (ICmpPred::Slt, false) => rhs
                            .as_const()
                            .and_then(|c| c.as_i64())
                            .is_some_and(|c| c >= -1)
                            .then_some(lhs),
                        _ => None,
                    };
                    if let Some(x) = positive {
                        changed |= strength_reduce_sdiv(f, &dom, x, target);
                    }
                }
            }
        }
        changed
    }
}

/// Rewrite `sdiv x, 2^k` → `lshr x, k` for instructions dominated by
/// `region`, where `x` is known positive there.
fn strength_reduce_sdiv(f: &mut Function, dom: &DomTree, x: Value, region: BlockId) -> bool {
    use uu_ir::BinOp;
    let mut changed = false;
    for b in subtree(dom, region) {
        for i in f.block(b).insts.clone() {
            if let InstKind::Bin {
                op: BinOp::SDiv,
                lhs,
                rhs,
            } = f.inst(i).kind
            {
                if lhs != x {
                    continue;
                }
                let Some(c) = rhs.as_const().and_then(|c| c.as_i64()) else {
                    continue;
                };
                if c > 0 && (c & (c - 1)) == 0 {
                    let k = c.trailing_zeros() as i64;
                    f.inst_mut(i).kind = InstKind::Bin {
                        op: BinOp::LShr,
                        lhs,
                        rhs: Value::imm(k),
                    };
                    changed = true;
                }
            }
        }
    }
    changed
}

/// All blocks in the dominator subtree rooted at `region` (the dominator
/// tree's precomputed child adjacency makes this linear in the subtree).
fn subtree(dom: &DomTree, region: BlockId) -> Vec<BlockId> {
    let mut out = Vec::new();
    let mut stack = vec![region];
    while let Some(b) = stack.pop() {
        out.push(b);
        stack.extend(dom.children(b).iter().copied());
    }
    out
}

/// Replace uses of `from` with `to` at every use site dominated by `region`.
/// For phi operands the use site is the incoming predecessor block.
///
/// Only the dominator subtree of `region` (plus its CFG successors, whose
/// phis may have incomings from dominated predecessors) is scanned, which
/// keeps the pass near-linear even on heavily unmerged bodies.
fn replace_dominated_uses(
    f: &mut Function,
    dom: &DomTree,
    from: Value,
    to: Value,
    region: BlockId,
) -> bool {
    let dominated = subtree(dom, region);
    let dom_set: EntitySet<BlockId> = dominated.iter().copied().collect();
    // Phi-bearing successors of dominated blocks (the phi itself may live
    // outside the subtree).
    let mut scan: Vec<BlockId> = dominated.clone();
    for &b in &dominated {
        for s in f.successors(b) {
            if !dom_set.contains(s) && !scan.contains(&s) {
                scan.push(s);
            }
        }
    }
    let mut changed = false;
    for ub in scan {
        let inside = dom_set.contains(ub);
        for u in f.block(ub).insts.clone() {
            let mut kind = f.inst(u).kind.clone();
            let mut touched = false;
            if let InstKind::Phi { incomings } = &mut kind {
                for (p, v) in incomings {
                    if *v == from && dom_set.contains(*p) {
                        *v = to;
                        touched = true;
                    }
                }
            } else if inside {
                kind.for_each_operand_mut(|v| {
                    if *v == from {
                        *v = to;
                        touched = true;
                    }
                });
            }
            if touched {
                f.inst_mut(u).kind = kind;
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, Param, Type};

    #[test]
    fn condition_known_in_taken_arm() {
        // if (c) { use c } — the use becomes `true`.
        let mut f = uu_ir::Function::new(
            "t",
            vec![Param::new("c", Type::I1), Param::new("p", Type::Ptr)],
            Type::Void,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        let x = b.load(Type::I1, Value::Arg(1));
        b.cond_br(x, t, j);
        b.switch_to(t);
        let ext = b.cast(uu_ir::CastOp::Zext, x, Type::I64);
        b.store(Value::Arg(1), ext);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        assert!(CondProp.run(&mut f));
        uu_ir::verify_function(&f).unwrap();
        // The zext in `t` now consumes the constant true.
        let zext = f
            .block(t)
            .insts
            .iter()
            .copied()
            .find(|i| matches!(f.inst(*i).kind, InstKind::Cast { .. }))
            .unwrap();
        match &f.inst(zext).kind {
            InstKind::Cast { value, .. } => assert_eq!(*value, Value::imm(true)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn condition_known_false_in_other_arm() {
        let mut f = uu_ir::Function::new(
            "t",
            vec![Param::new("p", Type::Ptr)],
            Type::Void,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let el = b.create_block();
        b.switch_to(e);
        let x = b.load(Type::I1, Value::Arg(0));
        b.cond_br(x, t, el);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(el);
        let ext = b.cast(uu_ir::CastOp::Zext, x, Type::I64);
        b.store(Value::Arg(0), ext);
        b.ret(None);
        assert!(CondProp.run(&mut f));
        let zext = f
            .block(el)
            .insts
            .iter()
            .copied()
            .find(|i| matches!(f.inst(*i).kind, InstKind::Cast { .. }))
            .unwrap();
        match &f.inst(zext).kind {
            InstKind::Cast { value, .. } => assert_eq!(*value, Value::imm(false)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn equality_fact_propagates_constant() {
        // if (x == 4) { store x } → store 4.
        let mut f = uu_ir::Function::new(
            "t",
            vec![Param::new("p", Type::Ptr)],
            Type::Void,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        let x = b.load(Type::I64, Value::Arg(0));
        let c = b.icmp(ICmpPred::Eq, x, Value::imm(4i64));
        b.cond_br(c, t, j);
        b.switch_to(t);
        b.store(Value::Arg(0), x);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        assert!(CondProp.run(&mut f));
        let st = f
            .block(t)
            .insts
            .iter()
            .copied()
            .find(|i| f.inst(*i).kind.writes_memory())
            .unwrap();
        match &f.inst(st).kind {
            InstKind::Store { value, .. } => {
                assert_eq!(value.as_const().unwrap().as_i64(), Some(4))
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn shared_target_gets_nothing() {
        // Both edges reach j (merge): no fact is valid there.
        let mut f = uu_ir::Function::new(
            "t",
            vec![Param::new("c", Type::I1), Param::new("p", Type::Ptr)],
            Type::Void,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        let x = b.load(Type::I1, Value::Arg(1));
        b.cond_br(x, t, j);
        b.switch_to(t);
        b.br(j);
        b.switch_to(j);
        let ext = b.cast(uu_ir::CastOp::Zext, x, Type::I64);
        b.store(Value::Arg(1), ext);
        b.ret(None);
        // j has two preds → nothing provable in j; only `t` (empty) is
        // dominated. No changes expected.
        assert!(!CondProp.run(&mut f));
    }

    use uu_ir::ICmpPred;
}

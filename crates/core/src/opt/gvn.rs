//! Dominator-scoped value numbering with redundant-load elimination.
//!
//! An EarlyCSE-style pass: walk the dominator tree with scoped hash tables,
//! value-number pure expressions, and eliminate redundant loads with
//! store-to-load forwarding. The memory state is tracked with per-*root*
//! generation counters, where a root is either a `__restrict__` pointer
//! parameter or the catch-all "other" — a store through one restrict
//! pointer cannot invalidate loads through another (C `restrict`
//! semantics), which is precisely what the paper's rainflow analysis (§V)
//! relies on to delete `x[i]`/`y[j]` re-loads.
//!
//! Soundness at joins and loop headers: on entering a dominator-tree child
//! whose CFG predecessors have not all been traversed yet (a loop header via
//! its latch, or a join reached out of order), all generations are bumped —
//! memory facts do not flow across untraversed paths. This conservatism is
//! exactly why *unrolling + unmerging* helps: the duplicated next-iteration
//! body is dominated by the current path, so cross-iteration redundancies
//! become ordinary dominator-scoped ones.

use super::Pass;
use std::collections::HashMap;
use uu_analysis::{AnalysisCache, DomTree};
use uu_ir::{
    BinOp, BlockId, CastOp, EntitySet, FCmpPred, Function, ICmpPred, InstKind, Intrinsic, Type,
    Value,
};

/// The GVN / load-elimination pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct Gvn;

impl Pass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        self.run_with(f, &mut AnalysisCache::new())
    }

    // Only rewrites and removes non-terminator instructions.
    fn preserves_cfg(&self) -> bool {
        true
    }

    fn run_with(&mut self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
        let dom = cache.dominators(f);
        // One predecessor map for the whole walk: GVN never changes the
        // CFG, so it stays valid across every replacement below.
        let preds = f.predecessors();
        let mut cse = Cse {
            exprs: ScopedMap::default(),
            loads: ScopedMap::default(),
            gens: vec![0; f.params().len() + 1],
            all_gen: 0,
            traversed: EntitySet::new(),
            changed: false,
        };
        cse.visit(f, &dom, &preds, f.entry());
        cse.changed
    }
}

/// Canonical key for a pure expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    Bin(BinOp, Value, Value),
    AddChain(Vec<Value>),
    ICmp(ICmpPred, Value, Value),
    FCmp(FCmpPred, Value, Value),
    Select(Value, Value, Value),
    Cast(CastOp, Value, Type),
    Gep(Value, Value, u64),
    Intr(Intrinsic, Vec<Value>),
}

fn expr_key(f: &Function, inst: &uu_ir::Inst) -> Option<ExprKey> {
    match &inst.kind {
        InstKind::Bin {
            op: op @ BinOp::Add,
            lhs,
            rhs,
        } if !inst.ty.is_float() => {
            // Flatten nested integer adds into a sorted leaf multiset so
            // `(base + i) + 1` and `base + (i + 1)` value-number together —
            // the reassociation behind the paper's rainflow cross-iteration
            // load elimination (`x[i+1]` becoming the next `x[i]`).
            let _ = op;
            let mut leaves = Vec::new();
            flatten_add_operands(f, *lhs, *rhs, &mut leaves, 0);
            leaves.sort();
            Some(ExprKey::AddChain(leaves))
        }
        InstKind::Bin { op, lhs, rhs } => {
            let (a, b) = if op.is_commutative() && lhs > rhs {
                (*rhs, *lhs)
            } else {
                (*lhs, *rhs)
            };
            Some(ExprKey::Bin(*op, a, b))
        }
        InstKind::ICmp { pred, lhs, rhs } => Some(ExprKey::ICmp(*pred, *lhs, *rhs)),
        InstKind::FCmp { pred, lhs, rhs } => Some(ExprKey::FCmp(*pred, *lhs, *rhs)),
        InstKind::Select {
            cond,
            on_true,
            on_false,
        } => Some(ExprKey::Select(*cond, *on_true, *on_false)),
        InstKind::Cast { op, value } => Some(ExprKey::Cast(*op, *value, inst.ty)),
        InstKind::Gep { base, index, scale } => Some(ExprKey::Gep(*base, *index, *scale)),
        InstKind::Intr { which, args } => {
            if which.is_convergent() || which.is_thread_id() {
                // thread.idx is pure *per thread*, and CSE-ing it is fine,
                // but geometry reads are cheap; still, CSE them for
                // cleanliness. Convergent ops are never keyed.
                if which.is_convergent() {
                    return None;
                }
            }
            Some(ExprKey::Intr(*which, args.clone()))
        }
        _ => None,
    }
}

/// Collect the leaves of an integer-add tree (bounded depth), treating any
/// non-add value as a leaf.
fn flatten_add_operands(f: &Function, lhs: Value, rhs: Value, leaves: &mut Vec<Value>, depth: u32) {
    for v in [lhs, rhs] {
        let mut pushed = false;
        if depth < 4 {
            if let Value::Inst(id) = v {
                if let InstKind::Bin {
                    op: BinOp::Add,
                    lhs: a,
                    rhs: b,
                } = f.inst(id).kind
                {
                    if !f.inst(id).ty.is_float() {
                        flatten_add_operands(f, a, b, leaves, depth + 1);
                        pushed = true;
                    }
                }
            }
        }
        if !pushed {
            leaves.push(v);
        }
    }
}

/// Memory root for alias reasoning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Root {
    /// Based on a `__restrict__` pointer parameter.
    Restrict(u32),
    /// Anything else — mutually may-alias.
    Other,
}

/// Trace an address back to its root.
fn root_of(f: &Function, mut addr: Value) -> Root {
    loop {
        match addr {
            Value::Arg(i) => {
                let p = &f.params()[i as usize];
                return if p.restrict && p.ty == Type::Ptr {
                    Root::Restrict(i)
                } else {
                    Root::Other
                };
            }
            Value::Inst(id) => match &f.inst(id).kind {
                InstKind::Gep { base, .. } => addr = *base,
                InstKind::Cast {
                    op: CastOp::IntToPtr | CastOp::PtrToInt,
                    value,
                } => addr = *value,
                // Integer pointer arithmetic: `p + k` is based on `p`.
                InstKind::Bin {
                    op: BinOp::Add | BinOp::Sub,
                    lhs,
                    rhs,
                } => {
                    // Follow the operand that leads to a pointer; constants
                    // and plain indices are offsets.
                    if rhs.is_const() {
                        addr = *lhs;
                    } else if lhs.is_const() {
                        addr = *rhs;
                    } else {
                        return Root::Other;
                    }
                }
                _ => return Root::Other,
            },
            Value::Const(_) => return Root::Other,
        }
    }
}

/// Hash map with scope-structured undo for insertions.
#[derive(Debug)]
struct ScopedMap<K, V> {
    map: HashMap<K, V>,
    log: Vec<(K, Option<V>)>,
    marks: Vec<usize>,
}

impl<K, V> Default for ScopedMap<K, V> {
    fn default() -> Self {
        ScopedMap {
            map: HashMap::new(),
            log: Vec::new(),
            marks: Vec::new(),
        }
    }
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> ScopedMap<K, V> {
    fn push_scope(&mut self) {
        self.marks.push(self.log.len());
    }

    fn pop_scope(&mut self) {
        let mark = self.marks.pop().expect("scope underflow");
        while self.log.len() > mark {
            let (k, old) = self.log.pop().unwrap();
            match old {
                Some(v) => {
                    self.map.insert(k, v);
                }
                None => {
                    self.map.remove(&k);
                }
            }
        }
    }

    fn insert(&mut self, k: K, v: V) {
        let old = self.map.insert(k.clone(), v);
        self.log.push((k, old));
    }

    fn get(&self, k: &K) -> Option<&V> {
        self.map.get(k)
    }
}

#[derive(Debug, Clone, Copy)]
struct LoadEntry {
    value: Value,
    root: Root,
    gen: u64,
    all_gen: u64,
}

struct Cse {
    exprs: ScopedMap<ExprKey, Value>,
    loads: ScopedMap<Value, LoadEntry>,
    /// Per-root store generation, densely indexed: slot `i` for
    /// `Root::Restrict(i)`, the last slot for `Root::Other`.
    gens: Vec<u64>,
    all_gen: u64,
    traversed: EntitySet<BlockId>,
    changed: bool,
}

impl Cse {
    fn slot(&self, r: Root) -> usize {
        match r {
            Root::Restrict(i) => i as usize,
            Root::Other => self.gens.len() - 1,
        }
    }

    fn gen_of(&self, r: Root) -> u64 {
        self.gens[self.slot(r)]
    }

    fn bump(&mut self, r: Root) {
        let s = self.slot(r);
        self.gens[s] += 1;
    }

    fn bump_all(&mut self) {
        self.all_gen += 1;
    }

    fn entry_valid(&self, e: &LoadEntry) -> bool {
        e.gen == self.gen_of(e.root) && e.all_gen == self.all_gen
    }

    fn visit(&mut self, f: &mut Function, dom: &DomTree, preds: &[Vec<BlockId>], b: BlockId) {
        self.traversed.insert(b);
        // Memory facts cannot flow across untraversed predecessors (loop
        // latches, out-of-order joins).
        if preds[b.index()]
            .iter()
            .any(|&p| !self.traversed.contains(p))
        {
            self.bump_all();
        }
        self.exprs.push_scope();
        self.loads.push_scope();

        for id in f.block(b).insts.clone() {
            if !f.block(b).insts.contains(&id) {
                continue; // removed by an earlier replacement
            }
            let inst = f.inst(id).clone();
            match &inst.kind {
                InstKind::Phi { .. } => {}
                InstKind::Load { ptr } => {
                    let root = root_of(f, *ptr);
                    if let Some(e) = self.loads.get(ptr).copied() {
                        if self.entry_valid(&e) && f.value_type(e.value) == inst.ty {
                            f.replace_all_uses(Value::Inst(id), e.value);
                            f.unlink_inst(b, id);
                            self.changed = true;
                            continue;
                        }
                    }
                    self.loads.insert(
                        *ptr,
                        LoadEntry {
                            value: Value::Inst(id),
                            root,
                            gen: self.gen_of(root),
                            all_gen: self.all_gen,
                        },
                    );
                }
                InstKind::Store { ptr, value } => {
                    let root = root_of(f, *ptr);
                    match root {
                        Root::Restrict(_) => self.bump(root),
                        // A store through a pointer we cannot trace may be
                        // *based on* a restrict pointer via integer
                        // arithmetic (legal C), so it must invalidate every
                        // root, not just Other.
                        Root::Other => self.bump_all(),
                    }
                    // Store-to-load forwarding.
                    self.loads.insert(
                        *ptr,
                        LoadEntry {
                            value: *value,
                            root,
                            gen: self.gen_of(root),
                            all_gen: self.all_gen,
                        },
                    );
                }
                InstKind::Intr { which, .. } if which.is_convergent() => {
                    self.bump_all();
                }
                _ => {
                    if let Some(key) = expr_key(f, &inst) {
                        if let Some(&existing) = self.exprs.get(&key) {
                            f.replace_all_uses(Value::Inst(id), existing);
                            f.unlink_inst(b, id);
                            self.changed = true;
                        } else {
                            self.exprs.insert(key, Value::Inst(id));
                        }
                    }
                }
            }
        }

        // Recurse into dominator children; the dominator tree's child
        // lists are already in RPO order.
        for &c in dom.children(b) {
            self.visit(f, dom, preds, c);
        }
        self.exprs.pop_scope();
        self.loads.pop_scope();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, Param};

    #[test]
    fn cses_identical_expressions() {
        let mut f = uu_ir::Function::new(
            "t",
            vec![Param::new("x", Type::I64), Param::new("p", Type::Ptr)],
            Type::Void,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let a1 = b.add(Value::Arg(0), Value::imm(1i64));
        let a2 = b.add(Value::Arg(0), Value::imm(1i64));
        let s = b.mul(a1, a2);
        b.store(Value::Arg(1), s);
        b.ret(None);
        assert!(Gvn.run(&mut f));
        uu_ir::verify_function(&f).unwrap();
        // One add remains; mul squares it.
        let adds = f
            .iter_insts()
            .filter(|(_, i)| matches!(i.kind, InstKind::Bin { op: BinOp::Add, .. }))
            .count();
        assert_eq!(adds, 1);
    }

    #[test]
    fn add_chains_value_number_across_association() {
        // (base + i) + 1  ≡  base + (i + 1)
        let mut f = uu_ir::Function::new(
            "t",
            vec![
                Param::new("base", Type::I64),
                Param::new("i", Type::I64),
                Param::new("p", Type::Ptr),
            ],
            Type::Void,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let bi = b.add(Value::Arg(0), Value::Arg(1));
        let a1 = b.add(bi, Value::imm(1i64));
        let i1 = b.add(Value::Arg(1), Value::imm(1i64));
        let a2 = b.add(Value::Arg(0), i1);
        let s = b.mul(a1, a2);
        b.store(Value::Arg(2), s);
        b.ret(None);
        assert!(Gvn.run(&mut f));
        uu_ir::verify_function(&f).unwrap();
        // a2 must be replaced by a1; the mul squares one value.
        let muls: Vec<_> = f
            .iter_insts()
            .filter_map(|(_, i)| match i.kind {
                InstKind::Bin {
                    op: BinOp::Mul,
                    lhs,
                    rhs,
                } => Some((lhs, rhs)),
                _ => None,
            })
            .collect();
        assert_eq!(muls.len(), 1);
        assert_eq!(muls[0].0, muls[0].1, "{f}");
    }

    #[test]
    fn commutative_canonicalization() {
        let mut f = uu_ir::Function::new(
            "t",
            vec![
                Param::new("x", Type::I64),
                Param::new("y", Type::I64),
                Param::new("p", Type::Ptr),
            ],
            Type::Void,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let a1 = b.add(Value::Arg(0), Value::Arg(1));
        let a2 = b.add(Value::Arg(1), Value::Arg(0));
        let s = b.mul(a1, a2);
        b.store(Value::Arg(2), s);
        b.ret(None);
        assert!(Gvn.run(&mut f));
        let adds = f
            .iter_insts()
            .filter(|(_, i)| matches!(i.kind, InstKind::Bin { op: BinOp::Add, .. }))
            .count();
        assert_eq!(adds, 1);
    }

    #[test]
    fn load_load_elimination_same_address() {
        let mut f = uu_ir::Function::new("t", vec![Param::new("p", Type::Ptr)], Type::F64);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let x1 = b.load(Type::F64, Value::Arg(0));
        let x2 = b.load(Type::F64, Value::Arg(0));
        let s = b.fadd(x1, x2);
        b.ret(Some(s));
        assert!(Gvn.run(&mut f));
        let loads = f.iter_insts().filter(|(_, i)| i.kind.reads_memory()).count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn store_blocks_load_reuse_without_restrict() {
        let mut f = uu_ir::Function::new(
            "t",
            vec![Param::new("p", Type::Ptr), Param::new("q", Type::Ptr)],
            Type::F64,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let x1 = b.load(Type::F64, Value::Arg(0));
        b.store(Value::Arg(1), Value::imm(0.0f64)); // may alias p
        let x2 = b.load(Type::F64, Value::Arg(0));
        let s = b.fadd(x1, x2);
        b.ret(Some(s));
        Gvn.run(&mut f);
        let loads = f.iter_insts().filter(|(_, i)| i.kind.reads_memory()).count();
        assert_eq!(loads, 2, "non-restrict store must kill the reuse");
    }

    #[test]
    fn restrict_store_does_not_block_reuse() {
        // The rainflow situation: x and y are __restrict__; a store through
        // y must not invalidate loads through x.
        let mut f = uu_ir::Function::new(
            "t",
            vec![
                Param::restrict("x", Type::Ptr),
                Param::restrict("y", Type::Ptr),
            ],
            Type::F64,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let x1 = b.load(Type::F64, Value::Arg(0));
        b.store(Value::Arg(1), Value::imm(0.0f64));
        let x2 = b.load(Type::F64, Value::Arg(0));
        let s = b.fadd(x1, x2);
        b.ret(Some(s));
        assert!(Gvn.run(&mut f));
        let loads = f.iter_insts().filter(|(_, i)| i.kind.reads_memory()).count();
        assert_eq!(loads, 1, "restrict store must not kill the reuse");
    }

    #[test]
    fn integer_pointer_arithmetic_invalidates_restrict_roots() {
        // Store through ptrtoint(x)+8 must kill reuse of loads from the
        // restrict arg x (the pointer is *based on* x via integer math).
        let mut f = uu_ir::Function::new(
            "t",
            vec![Param::restrict("x", Type::Ptr)],
            Type::F64,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let x1 = b.load(Type::F64, Value::Arg(0));
        let pi = b.cast(CastOp::PtrToInt, Value::Arg(0), Type::I64);
        let q = b.add(pi, Value::imm(8i64));
        let qp = b.cast(CastOp::IntToPtr, q, Type::Ptr);
        b.store(qp, Value::imm(0.0f64));
        let x2 = b.load(Type::F64, Value::Arg(0));
        let s = b.fadd(x1, x2);
        b.ret(Some(s));
        Gvn.run(&mut f);
        let loads = f.iter_insts().filter(|(_, i)| i.kind.reads_memory()).count();
        // root_of traces q back to x, so the store bumps Restrict(x): the
        // second load must survive.
        assert_eq!(loads, 2, "{f}");
    }

    #[test]
    fn untraceable_store_invalidates_everything() {
        // A store through the sum of two non-constant values cannot be
        // traced; it must invalidate even restrict roots.
        let mut f = uu_ir::Function::new(
            "t",
            vec![
                Param::restrict("x", Type::Ptr),
                Param::new("a", Type::I64),
                Param::new("b", Type::I64),
            ],
            Type::F64,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let x1 = b.load(Type::F64, Value::Arg(0));
        let q = b.add(Value::Arg(1), Value::Arg(2));
        b.store(q, Value::imm(0.0f64));
        let x2 = b.load(Type::F64, Value::Arg(0));
        let s = b.fadd(x1, x2);
        b.ret(Some(s));
        Gvn.run(&mut f);
        let loads = f.iter_insts().filter(|(_, i)| i.kind.reads_memory()).count();
        assert_eq!(loads, 2, "{f}");
    }

    #[test]
    fn store_to_load_forwarding() {
        let mut f = uu_ir::Function::new("t", vec![Param::new("p", Type::Ptr)], Type::F64);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        b.store(Value::Arg(0), Value::imm(3.5f64));
        let x = b.load(Type::F64, Value::Arg(0));
        b.ret(Some(x));
        assert!(Gvn.run(&mut f));
        let term = f.terminator(e).unwrap();
        match &f.inst(term).kind {
            InstKind::Ret { value } => assert_eq!(value.unwrap().as_const().unwrap().as_f64(), Some(3.5)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn reuse_across_dominated_diamond_join() {
        // load before a store-free diamond is reusable at the join.
        let mut f = uu_ir::Function::new(
            "t",
            vec![Param::new("p", Type::Ptr), Param::new("c", Type::I1)],
            Type::F64,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let el = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        let x1 = b.load(Type::F64, Value::Arg(0));
        b.cond_br(Value::Arg(1), t, el);
        b.switch_to(t);
        b.br(j);
        b.switch_to(el);
        b.br(j);
        b.switch_to(j);
        let x2 = b.load(Type::F64, Value::Arg(0));
        let s = b.fadd(x1, x2);
        b.ret(Some(s));
        assert!(Gvn.run(&mut f));
        let loads = f.iter_insts().filter(|(_, i)| i.kind.reads_memory()).count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn no_reuse_across_loop_header() {
        // A load before a loop must not be forwarded into the loop body if
        // the body stores to a may-aliasing location.
        let mut f = uu_ir::Function::new(
            "t",
            vec![Param::new("p", Type::Ptr), Param::new("n", Type::I64)],
            Type::Void,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(e);
        let _x1 = b.load(Type::F64, Value::Arg(0));
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, e, Value::imm(0i64));
        let x2 = b.load(Type::F64, Value::Arg(0)); // must stay
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let y = b.fadd(x2, Value::imm(1.0f64));
        b.store(Value::Arg(0), y);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        Gvn.run(&mut f);
        uu_ir::verify_function(&f).unwrap();
        let loads: Vec<_> = f
            .iter_insts()
            .filter(|(_, i)| i.kind.reads_memory())
            .map(|(id, _)| id)
            .collect();
        assert_eq!(loads.len(), 2, "header load must survive:\n{f}");
    }

    use uu_ir::ICmpPred;
}

//! Dead code elimination.

use super::Pass;
use uu_ir::{EntitySet, Function, InstId, Value};

/// Removes instructions whose results are unused and that have no side
/// effects, via a liveness worklist seeded from stores, terminators and
/// convergent operations.
#[derive(Debug, Default, Clone, Copy)]
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    // Terminators always have side effects, so they are never removed.
    fn preserves_cfg(&self) -> bool {
        true
    }

    fn run(&mut self, f: &mut Function) -> bool {
        let mut live: EntitySet<InstId> = EntitySet::new();
        let mut work: Vec<InstId> = Vec::new();
        for (id, inst) in f.iter_insts() {
            if inst.kind.has_side_effects() {
                live.insert(id);
                work.push(id);
            }
        }
        while let Some(id) = work.pop() {
            f.inst(id).kind.for_each_operand(|v| {
                if let Value::Inst(d) = v {
                    if live.insert(*d) {
                        work.push(*d);
                    }
                }
            });
        }
        let mut changed = false;
        for b in f.layout().to_vec() {
            let dead: Vec<InstId> = f
                .block(b)
                .insts
                .iter()
                .copied()
                .filter(|i| !live.contains(*i))
                .collect();
            for i in dead {
                f.unlink_inst(b, i);
                changed = true;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, Param, Type};

    #[test]
    fn removes_dead_chain_keeps_live() {
        let mut f = uu_ir::Function::new("t", vec![Param::new("p", Type::Ptr)], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let x = b.load(Type::I64, Value::Arg(0)); // live (stored)
        let d1 = b.add(x, Value::imm(1i64)); // dead
        let _d2 = b.mul(d1, Value::imm(2i64)); // dead
        b.store(Value::Arg(0), x);
        b.ret(None);
        assert!(Dce.run(&mut f));
        uu_ir::verify_function(&f).unwrap();
        assert_eq!(f.block(e).insts.len(), 3); // load, store, ret
        assert!(!Dce.run(&mut f), "second run is a no-op");
    }

    #[test]
    fn dead_load_is_removed() {
        let mut f = uu_ir::Function::new("t", vec![Param::new("p", Type::Ptr)], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let _x = b.load(Type::I64, Value::Arg(0));
        b.ret(None);
        assert!(Dce.run(&mut f));
        assert_eq!(f.block(e).insts.len(), 1);
    }

    #[test]
    fn convergent_ops_survive() {
        let mut f = uu_ir::Function::new("t", vec![], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        b.syncthreads();
        b.ret(None);
        assert!(!Dce.run(&mut f));
        assert_eq!(f.block(e).insts.len(), 2);
    }

    #[test]
    fn dead_phi_cycle_is_removed() {
        // Two phis feeding each other with no external use.
        let mut f = uu_ir::Function::new("t", vec![Param::new("n", Type::I64)], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(e);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, e, Value::imm(0i64));
        let dead = b.phi(Type::I64);
        b.add_phi_incoming(dead, e, Value::imm(5i64));
        let c = b.icmp(uu_ir::ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        let dead1 = b.add(dead, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.add_phi_incoming(dead, body, dead1);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        uu_ir::verify_function(&f).unwrap();
        assert!(Dce.run(&mut f));
        uu_ir::verify_function(&f).unwrap();
        // dead + dead1 removed; i + i1 + cmp survive (branch uses them).
        assert_eq!(f.phis(h).len(), 1);
    }
}

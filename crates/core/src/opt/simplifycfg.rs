//! CFG simplification: branch folding, jump threading, block merging.

use super::Pass;
use crate::clone::{remove_phi_incomings_from, resolve_trivial_phis};
use uu_ir::{Function, InstKind};

/// Iteratively simplifies the CFG:
///
/// 1. `condbr` on a constant → `br` (dead edge removed from phis);
/// 2. `condbr` with identical targets → `br`;
/// 3. single-incoming phis replaced by their value;
/// 4. empty forwarding blocks (a lone `br`) threaded away;
/// 5. straight-line block pairs merged;
/// 6. unreachable blocks pruned.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimplifyCfg {
    _priv: (),
}

impl Pass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplifycfg"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        let mut changed = false;
        loop {
            let mut round = false;
            round |= fold_constant_branches(f);
            round |= resolve_all_trivial_phis(f);
            round |= thread_empty_blocks(f);
            round |= merge_straightline_pairs(f);
            round |= f.prune_unreachable() > 0;
            if !round {
                break;
            }
            changed = true;
        }
        changed
    }
}

fn fold_constant_branches(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.layout().to_vec() {
        let Some(t) = f.terminator(b) else { continue };
        if let InstKind::CondBr {
            cond,
            if_true,
            if_false,
        } = f.inst(t).kind
        {
            if if_true == if_false {
                f.inst_mut(t).kind = InstKind::Br { target: if_true };
                changed = true;
            } else if let Some(c) = cond.as_const().and_then(|c| c.as_bool()) {
                let (taken, dead) = if c {
                    (if_true, if_false)
                } else {
                    (if_false, if_true)
                };
                f.inst_mut(t).kind = InstKind::Br { target: taken };
                remove_phi_incomings_from(f, dead, b);
                changed = true;
            }
        }
    }
    changed
}

fn resolve_all_trivial_phis(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.layout().to_vec() {
        changed |= resolve_trivial_phis(f, b) > 0;
    }
    changed
}

/// Thread `P → E → T` to `P → T` when `E` contains only a `br` (no phis).
fn thread_empty_blocks(f: &mut Function) -> bool {
    let mut changed = false;
    // One predecessor map per scan, refreshed only after a successful
    // thread (the map is stale from then on); candidates between
    // mutations see exactly what a fresh recompute would produce.
    let mut preds = f.predecessors();
    for e in f.layout().to_vec() {
        if e == f.entry() {
            continue;
        }
        let insts = &f.block(e).insts;
        if insts.len() != 1 {
            continue;
        }
        let InstKind::Br { target } = f.inst(insts[0]).kind else {
            continue;
        };
        if target == e {
            continue; // self loop
        }
        let e_preds = preds[e.index()].clone();
        if e_preds.is_empty() {
            continue; // unreachable; prune will take it
        }
        // Guard: if T has phis and some pred of E is already a pred of T,
        // threading would create conflicting duplicate incomings.
        let t_has_phis = !f.phis(target).is_empty();
        if t_has_phis {
            let t_preds = &preds[target.index()];
            if e_preds.iter().any(|p| t_preds.contains(p)) {
                continue;
            }
        }
        // Retarget every pred of E.
        for &p in &e_preds {
            let pt = f.terminator(p).expect("pred terminator");
            f.inst_mut(pt).kind.replace_block(e, target);
        }
        // Phi incomings in T: the entry from E becomes one entry per pred.
        for phi in f.phis(target) {
            let mut from_e = None;
            if let InstKind::Phi { incomings } = &f.inst(phi).kind {
                for (b, v) in incomings {
                    if *b == e {
                        from_e = Some(*v);
                    }
                }
            }
            if let Some(v) = from_e {
                if let InstKind::Phi { incomings } = &mut f.inst_mut(phi).kind {
                    incomings.retain(|(b, _)| *b != e);
                    for &p in &e_preds {
                        incomings.push((p, v));
                    }
                }
            }
        }
        f.remove_block(e);
        changed = true;
        preds = f.predecessors();
    }
    changed
}

/// Merge `B → S` when `S` is `B`'s only successor and `B` is `S`'s only
/// predecessor.
fn merge_straightline_pairs(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let preds = f.predecessors();
        let mut merged = false;
        for b in f.layout().to_vec() {
            if !f.is_linked(b) {
                continue;
            }
            let succs = f.successors(b);
            if succs.len() != 1 {
                continue;
            }
            let s = succs[0];
            if s == b || s == f.entry() {
                continue;
            }
            if preds[s.index()].len() != 1 {
                continue;
            }
            // Double edge (condbr with both targets == s) is already
            // excluded: successors() would report len 2.
            // Resolve S's phis (single incoming) first.
            resolve_trivial_phis(f, s);
            if !f.phis(s).is_empty() {
                continue; // shouldn't happen; be safe
            }
            // Drop B's terminator, splice S's instructions.
            let bt = f.terminator(b).expect("terminator");
            f.unlink_inst(b, bt);
            let s_insts = f.block(s).insts.clone();
            f.block_mut(s).insts.clear();
            f.block_mut(b).insts.extend(s_insts);
            // S's successors' phis now come from B.
            for succ in f.successors(b) {
                for phi in f.phis(succ) {
                    f.inst_mut(phi).kind.replace_block(s, b);
                }
            }
            f.remove_block(s);
            merged = true;
            changed = true;
            break; // preds map is stale; restart scan
        }
        if !merged {
            break;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type, Value};

    #[test]
    fn folds_constant_branch_and_prunes() {
        let mut f = uu_ir::Function::new("t", vec![Param::new("p", Type::Ptr)], Type::I64);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let fl = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        b.cond_br(Value::imm(true), t, fl);
        b.switch_to(t);
        b.br(j);
        b.switch_to(fl);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I64);
        b.add_phi_incoming(p, t, Value::imm(1i64));
        b.add_phi_incoming(p, fl, Value::imm(2i64));
        b.ret(Some(p));
        uu_ir::verify_function(&f).unwrap();
        assert!(SimplifyCfg::default().run(&mut f));
        uu_ir::verify_function(&f).unwrap_or_else(|er| panic!("{er}\n{f}"));
        // Everything collapses into the entry returning 1.
        assert_eq!(f.num_blocks(), 1);
        let term = f.terminator(f.entry()).unwrap();
        match &f.inst(term).kind {
            InstKind::Ret { value } => {
                assert_eq!(value.unwrap().as_const().unwrap().as_i64(), Some(1))
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn merges_straightline_chain() {
        let mut f = uu_ir::Function::new("t", vec![Param::new("p", Type::Ptr)], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let m1 = b.create_block();
        let m2 = b.create_block();
        b.switch_to(e);
        let x = b.load(Type::I64, Value::Arg(0));
        b.br(m1);
        b.switch_to(m1);
        let y = b.add(x, Value::imm(1i64));
        b.br(m2);
        b.switch_to(m2);
        b.store(Value::Arg(0), y);
        b.ret(None);
        assert!(SimplifyCfg::default().run(&mut f));
        uu_ir::verify_function(&f).unwrap();
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.block(f.entry()).insts.len(), 4);
    }

    #[test]
    fn threads_empty_forwarding_block() {
        let mut f = uu_ir::Function::new(
            "t",
            vec![Param::new("c", Type::I1), Param::new("p", Type::Ptr)],
            Type::I64,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let fwd = b.create_block();
        let other = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        b.cond_br(Value::Arg(0), fwd, other);
        b.switch_to(fwd);
        b.br(j); // empty forwarder
        b.switch_to(other);
        let x = b.load(Type::I64, Value::Arg(1));
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I64);
        b.add_phi_incoming(p, fwd, Value::imm(7i64));
        b.add_phi_incoming(p, other, x);
        b.ret(Some(p));
        uu_ir::verify_function(&f).unwrap();
        assert!(SimplifyCfg::default().run(&mut f));
        uu_ir::verify_function(&f).unwrap_or_else(|er| panic!("{er}\n{f}"));
        // fwd is gone; entry branches straight to j.
        assert!(!f.is_linked(fwd));
        let succs = f.successors(f.entry());
        assert!(succs.contains(&j));
    }

    #[test]
    fn keeps_loops_intact() {
        // A loop must survive simplification (no infinite merging).
        let mut f = uu_ir::Function::new("t", vec![Param::new("n", Type::I64)], Type::I64);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(e);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, e, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        SimplifyCfg::default().run(&mut f);
        uu_ir::verify_function(&f).unwrap_or_else(|er| panic!("{er}\n{f}"));
        // The loop still exists.
        let dom = uu_analysis::DomTree::compute(&f);
        let forest = uu_analysis::LoopForest::compute(&f, &dom);
        assert_eq!(forest.len(), 1);
    }

    #[test]
    fn condbr_same_target_becomes_br() {
        let mut f = uu_ir::Function::new("t", vec![Param::new("c", Type::I1)], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let j = b.create_block();
        b.switch_to(e);
        b.cond_br(Value::Arg(0), j, j);
        b.switch_to(j);
        b.ret(None);
        assert!(SimplifyCfg::default().run(&mut f));
        uu_ir::verify_function(&f).unwrap();
        assert_eq!(f.num_blocks(), 1);
    }
}

//! Sparse conditional constant propagation.
//!
//! Classic Wegman–Zadeck SCCP over the three-level lattice
//! `Top → Const(c) → Bottom`, with executable-edge tracking. Its optimism is
//! what lets the baseline pipeline *fully unroll* counted loops: unrolling
//! `trip_count + 1` copies leaves a back edge that SCCP proves dead (the
//! last copy's exit condition folds), after which every induction value is a
//! constant and the loop structure evaporates.

use super::Pass;
use uu_ir::{fold, BlockId, Constant, EntitySet, Function, InstId, InstKind, SecondaryMap, Value};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Lattice {
    /// No information yet (optimistic).
    Top,
    /// Known constant.
    Const(Constant),
    /// Overdefined.
    Bottom,
}

impl Lattice {
    fn meet(self, other: Lattice) -> Lattice {
        match (self, other) {
            (Lattice::Top, x) | (x, Lattice::Top) => x,
            (Lattice::Const(a), Lattice::Const(b)) if a == b => Lattice::Const(a),
            _ => Lattice::Bottom,
        }
    }
}

/// The SCCP pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct Sccp;

impl Pass for Sccp {
    fn name(&self) -> &'static str {
        "sccp"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        let solution = solve(f);
        apply(f, &solution)
    }
}

struct Solution {
    values: SecondaryMap<InstId, Lattice>,
    exec_blocks: EntitySet<BlockId>,
    block_of: SecondaryMap<InstId, BlockId>,
}

fn value_lattice(values: &SecondaryMap<InstId, Lattice>, v: Value) -> Lattice {
    match v {
        Value::Const(c) => Lattice::Const(c),
        Value::Arg(_) => Lattice::Bottom,
        Value::Inst(i) => *values.get(i),
    }
}

fn solve(f: &Function) -> Solution {
    let mut values: SecondaryMap<InstId, Lattice> = SecondaryMap::with_default(Lattice::Top);
    // Executable edges as one bitset of successors per source block.
    let mut exec_edges: SecondaryMap<BlockId, EntitySet<BlockId>> = SecondaryMap::new();
    let mut exec_blocks: EntitySet<BlockId> = EntitySet::new();
    let mut flow: Vec<(BlockId, BlockId)> = Vec::new();
    let mut ssa: Vec<InstId> = Vec::new();

    // Use lists.
    let mut users: SecondaryMap<InstId, Vec<InstId>> = SecondaryMap::new();
    let mut block_of: SecondaryMap<InstId, BlockId> = SecondaryMap::with_default(f.entry());
    for &b in f.layout() {
        for &i in &f.block(b).insts {
            block_of.set(i, b);
            f.inst(i).kind.for_each_operand(|v| {
                if let Value::Inst(d) = v {
                    users.get_mut(*d).push(i);
                }
            });
        }
    }

    let eval = |values: &SecondaryMap<InstId, Lattice>,
                exec_edges: &SecondaryMap<BlockId, EntitySet<BlockId>>,
                i: InstId,
                b: BlockId|
     -> Lattice {
        let inst = f.inst(i);
        match &inst.kind {
            InstKind::Phi { incomings } => {
                let mut acc = Lattice::Top;
                for (p, v) in incomings {
                    if exec_edges.get(*p).contains(b) {
                        acc = acc.meet(value_lattice(values, *v));
                    }
                }
                acc
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => match value_lattice(values, *cond) {
                Lattice::Const(c) => {
                    let arm = if c.as_bool() == Some(true) {
                        *on_true
                    } else {
                        *on_false
                    };
                    value_lattice(values, arm)
                }
                Lattice::Top => Lattice::Top,
                Lattice::Bottom => value_lattice(values, *on_true)
                    .meet(value_lattice(values, *on_false)),
            },
            InstKind::Load { .. } | InstKind::Store { .. } => Lattice::Bottom,
            InstKind::Br { .. } | InstKind::CondBr { .. } | InstKind::Ret { .. } => {
                Lattice::Bottom
            }
            kind => {
                // Pure instruction: fold when all operands are constants.
                let mut any_top = false;
                let mut any_bottom = false;
                kind.for_each_operand(|v| match value_lattice(values, *v) {
                    Lattice::Top => any_top = true,
                    Lattice::Bottom => any_bottom = true,
                    Lattice::Const(_) => {}
                });
                if any_bottom {
                    return Lattice::Bottom;
                }
                if any_top {
                    return Lattice::Top;
                }
                // Substitute constants and fold.
                let mut k = kind.clone();
                k.for_each_operand_mut(|v| {
                    if let Lattice::Const(c) = value_lattice(values, *v) {
                        *v = Value::Const(c);
                    }
                });
                let tmp = uu_ir::Inst::new(k, inst.ty);
                match fold_pure(&tmp) {
                    Some(c) => Lattice::Const(c),
                    None => Lattice::Bottom,
                }
            }
        }
    };

    // Seed with the entry.
    let entry = f.entry();
    exec_blocks.insert(entry);
    let mut newly_exec: Vec<BlockId> = vec![entry];

    loop {
        // Evaluate instructions of newly executable blocks.
        while let Some(b) = newly_exec.pop() {
            for &i in &f.block(b).insts {
                ssa.push(i);
            }
        }
        let Some(i) = ssa.pop() else {
            if flow.is_empty() {
                break;
            }
            // Process one flow edge.
            while let Some((from, to)) = flow.pop() {
                if exec_edges.get_mut(from).insert(to) {
                    if exec_blocks.insert(to) {
                        newly_exec.push(to);
                    } else {
                        // Re-evaluate phis of `to` (new incoming edge).
                        for phi in f.phis(to) {
                            ssa.push(phi);
                        }
                    }
                }
            }
            continue;
        };
        let b = *block_of.get(i);
        if !exec_blocks.contains(b) {
            continue;
        }
        let inst = f.inst(i);
        // Terminators contribute flow edges.
        match &inst.kind {
            InstKind::Br { target } => {
                flow.push((b, *target));
                continue;
            }
            InstKind::CondBr {
                cond,
                if_true,
                if_false,
            } => {
                match value_lattice(&values, *cond) {
                    Lattice::Const(c) => {
                        let t = if c.as_bool() == Some(true) {
                            *if_true
                        } else {
                            *if_false
                        };
                        flow.push((b, t));
                    }
                    Lattice::Bottom => {
                        flow.push((b, *if_true));
                        flow.push((b, *if_false));
                    }
                    Lattice::Top => {}
                }
                continue;
            }
            _ => {}
        }
        if inst.ty == uu_ir::Type::Void {
            continue;
        }
        let new = eval(&values, &exec_edges, i, b);
        let old = *values.get(i);
        let merged = old.meet(new);
        if merged != old {
            values.set(i, merged);
            for &u in users.get(i) {
                ssa.push(u);
            }
            // The value may gate a branch in the same block.
            if let Some(t) = f.terminator(b) {
                ssa.push(t);
            }
        }
    }
    Solution {
        values,
        exec_blocks,
        block_of,
    }
}

/// Fold a pure instruction with constant operands (no memory, no control).
fn fold_pure(inst: &uu_ir::Inst) -> Option<Constant> {
    match &inst.kind {
        InstKind::Bin { op, lhs, rhs } => {
            fold::fold_bin(*op, lhs.as_const()?, rhs.as_const()?)
        }
        InstKind::ICmp { pred, lhs, rhs } => {
            fold::fold_icmp(*pred, lhs.as_const()?, rhs.as_const()?)
        }
        InstKind::FCmp { pred, lhs, rhs } => {
            fold::fold_fcmp(*pred, lhs.as_const()?, rhs.as_const()?)
        }
        InstKind::Cast { op, value } => fold::fold_cast(*op, value.as_const()?, inst.ty),
        InstKind::Gep { base, index, scale } => {
            let b = base.as_const()?.as_i64()?;
            let i = index.as_const()?.as_i64()?;
            Some(Constant::I64(b.wrapping_add(i.wrapping_mul(*scale as i64))))
        }
        InstKind::Intr { which, args } => {
            let consts: Option<Vec<Constant>> = args.iter().map(|a| a.as_const()).collect();
            fold::fold_intrinsic(*which, &consts?, inst.ty)
        }
        _ => None,
    }
}

fn apply(f: &mut Function, sol: &Solution) -> bool {
    let mut changed = false;
    // Replace constant values (in instruction-index order: the outcome is
    // order-independent, the iteration is just deterministic and dense).
    for (i, &lat) in sol.values.iter() {
        if let Lattice::Const(c) = lat {
            f.replace_all_uses(Value::Inst(i), Value::Const(c));
            changed = true;
            // Unlink the pure instruction from the one block holding it.
            if !f.inst(i).kind.has_side_effects() {
                f.unlink_inst(*sol.block_of.get(i), i);
            }
        }
    }
    // Rewrite branches whose conditions are now constant.
    for b in f.layout().to_vec() {
        let Some(t) = f.terminator(b) else { continue };
        if let InstKind::CondBr {
            cond,
            if_true,
            if_false,
        } = f.inst(t).kind
        {
            if let Some(c) = cond.as_const().and_then(|c| c.as_bool()) {
                let (taken, dead) = if c {
                    (if_true, if_false)
                } else {
                    (if_false, if_true)
                };
                f.inst_mut(t).kind = InstKind::Br { target: taken };
                if dead != taken {
                    crate::clone::remove_phi_incomings_from(f, dead, b);
                }
                changed = true;
            }
        }
    }
    // Unlink blocks SCCP proved unreachable, then prune.
    let dead: Vec<_> = f
        .layout()
        .to_vec()
        .into_iter()
        .filter(|b| !sol.exec_blocks.contains(*b))
        .collect();
    if !dead.is_empty() {
        changed = true;
    }
    for b in dead {
        // Remove phi references first.
        let succs = f.successors(b);
        for s in succs {
            crate::clone::remove_phi_incomings_from(f, s, b);
        }
        f.remove_block(b);
    }
    f.prune_unreachable();
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type};

    #[test]
    fn propagates_through_phi_and_kills_dead_arm() {
        // if (true) x = 1 else x = 2; return x + 1  →  ret 2
        let mut f = uu_ir::Function::new("t", vec![], Type::I64);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let el = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        b.cond_br(Value::imm(true), t, el);
        b.switch_to(t);
        b.br(j);
        b.switch_to(el);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I64);
        b.add_phi_incoming(p, t, Value::imm(1i64));
        b.add_phi_incoming(p, el, Value::imm(2i64));
        let r = b.add(p, Value::imm(1i64));
        b.ret(Some(r));
        assert!(Sccp.run(&mut f));
        uu_ir::verify_function(&f).unwrap_or_else(|er| panic!("{er}\n{f}"));
        let term = f.terminator(j).unwrap();
        match &f.inst(term).kind {
            InstKind::Ret { value } => {
                assert_eq!(value.unwrap().as_const().unwrap().as_i64(), Some(2))
            }
            _ => unreachable!(),
        }
        assert!(!f.is_linked(el));
    }

    #[test]
    fn optimistic_loop_constant() {
        // i starts at 0 and the "increment" keeps it at 0: SCCP proves i==0.
        let mut f = uu_ir::Function::new("t", vec![Param::new("n", Type::I64)], Type::I64);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(e);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, e, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.mul(i, Value::imm(2i64)); // 0 * 2 == 0
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        assert!(Sccp.run(&mut f));
        uu_ir::verify_function(&f).unwrap_or_else(|er| panic!("{er}\n{f}"));
        let term = f.terminator(exit).unwrap();
        match &f.inst(term).kind {
            InstKind::Ret { value } => {
                assert_eq!(value.unwrap().as_const().unwrap().as_i64(), Some(0))
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn kills_never_taken_backedge() {
        // while (i < 1) i += 1  starting at 0: one iteration; SCCP alone
        // cannot fully fold (phi meets 0 and 1 → bottom), but a *peeled*
        // copy folds. Here we verify the solver is sound: no change beyond
        // executable facts, IR stays valid.
        let mut f = uu_ir::Function::new("t", vec![], Type::I64);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(e);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, e, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::imm(1i64));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        Sccp.run(&mut f);
        uu_ir::verify_function(&f).unwrap_or_else(|er| panic!("{er}\n{f}"));
    }

    #[test]
    fn select_with_known_condition() {
        let mut f = uu_ir::Function::new("t", vec![Param::new("x", Type::I64)], Type::I64);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        b.switch_to(e);
        let c = b.icmp(ICmpPred::Slt, Value::imm(1i64), Value::imm(2i64)); // true
        let s = b.select(c, Value::imm(7i64), Value::Arg(0));
        b.ret(Some(s));
        assert!(Sccp.run(&mut f));
        let term = f.terminator(e).unwrap();
        match &f.inst(term).kind {
            InstKind::Ret { value } => {
                assert_eq!(value.unwrap().as_const().unwrap().as_i64(), Some(7))
            }
            _ => unreachable!(),
        }
    }
}

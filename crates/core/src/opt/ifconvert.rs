//! If-conversion: turning small diamonds and triangles into `select`s.
//!
//! This is the baseline behaviour the paper contrasts against: NVIDIA
//! backends aggressively *predicate* short conditional bodies, emitting
//! `selp` instead of branches (Listing 4). The pass hoists cheap, pure side
//! blocks into the branch block and replaces join phis with selects. After
//! u&u, merge blocks are gone, so nothing if-converts inside the transformed
//! body — branches replace `selp`, exactly the PTX difference in §V.

use super::Pass;
use uu_ir::{BlockId, Function, Inst, InstId, InstKind, Value};

/// Maximum number of speculated instructions per side block.
const MAX_SPECULATED: usize = 6;

/// The if-conversion (select formation) pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct IfConvert;

impl Pass for IfConvert {
    fn name(&self) -> &'static str {
        "ifconvert"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        let mut changed = false;
        loop {
            let mut round = false;
            for b in f.layout().to_vec() {
                if !f.is_linked(b) {
                    continue;
                }
                if try_convert(f, b) {
                    round = true;
                    changed = true;
                    break; // CFG changed; rescan
                }
            }
            if !round {
                break;
            }
        }
        changed
    }
}

/// A side block is speculatable if every instruction (bar the terminator) is
/// pure and cheap.
fn speculatable(f: &Function, b: BlockId) -> Option<Vec<InstId>> {
    let insts = &f.block(b).insts;
    if insts.len() > MAX_SPECULATED + 1 {
        return None;
    }
    let mut body = Vec::new();
    for (i, &id) in insts.iter().enumerate() {
        let kind = &f.inst(id).kind;
        if i + 1 == insts.len() {
            if !matches!(kind, InstKind::Br { .. }) {
                return None;
            }
            continue;
        }
        if kind.is_phi()
            || kind.has_side_effects()
            || kind.reads_memory()
            || kind.writes_memory()
            || matches!(kind, InstKind::Intr { .. })
        {
            return None;
        }
        body.push(id);
    }
    Some(body)
}

fn single_pred(_f: &Function, preds: &[Vec<BlockId>], b: BlockId, p: BlockId) -> bool {
    preds[b.index()] == vec![p]
}

fn try_convert(f: &mut Function, b: BlockId) -> bool {
    let Some(t) = f.terminator(b) else {
        return false;
    };
    let InstKind::CondBr {
        cond,
        if_true,
        if_false,
    } = f.inst(t).kind
    else {
        return false;
    };
    if if_true == if_false {
        return false;
    }
    let preds = f.predecessors();
    // Diamond: b → {T, F} → J, with J having exactly those two
    // predecessors. The two-entry restriction matches LLVM's
    // FoldTwoEntryPHINode — and is why unmerged loop bodies stay branches:
    // their merge point (the loop header) has one predecessor per path.
    let diamond = {
        let ts = f.successors(if_true);
        let fs = f.successors(if_false);
        ts.len() == 1
            && fs.len() == 1
            && ts[0] == fs[0]
            && ts[0] != b
            && single_pred(f, &preds, if_true, b)
            && single_pred(f, &preds, if_false, b)
            && preds[ts[0].index()].len() == 2
    };
    if diamond {
        let join = f.successors(if_true)[0];
        let (Some(tb), Some(fb)) = (speculatable(f, if_true), speculatable(f, if_false)) else {
            return false;
        };
        // Hoist both sides into b, before the terminator.
        hoist(f, b, if_true, &tb);
        hoist(f, b, if_false, &fb);
        // Replace join phis with selects in b.
        for phi in f.phis(join) {
            let (mut tv, mut fv) = (None, None);
            if let InstKind::Phi { incomings } = &f.inst(phi).kind {
                for (p, v) in incomings {
                    if *p == if_true {
                        tv = Some(*v);
                    }
                    if *p == if_false {
                        fv = Some(*v);
                    }
                }
            }
            let (Some(tv), Some(fv)) = (tv, fv) else {
                continue;
            };
            let ty = f.inst(phi).ty;
            let sel = f.create_inst(Inst::new(
                InstKind::Select {
                    cond,
                    on_true: tv,
                    on_false: fv,
                },
                ty,
            ));
            // Insert before terminator of b.
            let pos = f.block(b).insts.len() - 1;
            f.block_mut(b).insts.insert(pos, sel);
            // Phi loses the two arms and gains one incoming from b.
            if let InstKind::Phi { incomings } = &mut f.inst_mut(phi).kind {
                incomings.retain(|(p, _)| *p != if_true && *p != if_false);
                incomings.push((b, Value::Inst(sel)));
            }
        }
        // b now branches straight to join.
        let t = f.terminator(b).unwrap();
        f.inst_mut(t).kind = InstKind::Br { target: join };
        f.remove_block(if_true);
        f.remove_block(if_false);
        crate::clone::resolve_trivial_phis(f, join);
        return true;
    }
    // Triangle: b → {T, J}, T → J.
    for (side, join, cond_is_true_side) in
        [(if_true, if_false, true), (if_false, if_true, false)]
    {
        let ss = f.successors(side);
        if ss.len() != 1 || ss[0] != join || !single_pred(f, &preds, side, b) {
            continue;
        }
        if join == b || preds[join.index()].len() != 2 {
            continue;
        }
        let Some(body) = speculatable(f, side) else {
            continue;
        };
        hoist(f, b, side, &body);
        for phi in f.phis(join) {
            let (mut sv, mut bv) = (None, None);
            if let InstKind::Phi { incomings } = &f.inst(phi).kind {
                for (p, v) in incomings {
                    if *p == side {
                        sv = Some(*v);
                    }
                    if *p == b {
                        bv = Some(*v);
                    }
                }
            }
            let (Some(sv), Some(bv)) = (sv, bv) else {
                continue;
            };
            let ty = f.inst(phi).ty;
            let (on_true, on_false) = if cond_is_true_side {
                (sv, bv)
            } else {
                (bv, sv)
            };
            let sel = f.create_inst(Inst::new(
                InstKind::Select {
                    cond,
                    on_true,
                    on_false,
                },
                ty,
            ));
            let pos = f.block(b).insts.len() - 1;
            f.block_mut(b).insts.insert(pos, sel);
            if let InstKind::Phi { incomings } = &mut f.inst_mut(phi).kind {
                incomings.retain(|(p, _)| *p != side);
                for (p, v) in incomings.iter_mut() {
                    if *p == b {
                        *v = Value::Inst(sel);
                    }
                }
            }
        }
        let t = f.terminator(b).unwrap();
        f.inst_mut(t).kind = InstKind::Br { target: join };
        f.remove_block(side);
        crate::clone::resolve_trivial_phis(f, join);
        return true;
    }
    false
}

/// Move the body instructions of `side` into `b`, before its terminator.
fn hoist(f: &mut Function, b: BlockId, side: BlockId, body: &[InstId]) {
    for &id in body {
        f.unlink_inst(side, id);
        let pos = f.block(b).insts.len() - 1;
        f.block_mut(b).insts.insert(pos, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type};

    /// The XSBench pattern: if (A[mid] > q) upper = mid else lower = mid.
    #[test]
    fn diamond_with_phi_only_arms_becomes_selects() {
        let mut f = uu_ir::Function::new(
            "t",
            vec![
                Param::new("upper", Type::I64),
                Param::new("lower", Type::I64),
                Param::new("mid", Type::I64),
                Param::new("c", Type::I1),
            ],
            Type::I64,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let t = b.create_block();
        let el = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        b.cond_br(Value::Arg(3), t, el);
        b.switch_to(t);
        b.br(j);
        b.switch_to(el);
        b.br(j);
        b.switch_to(j);
        let up = b.phi(Type::I64);
        b.add_phi_incoming(up, t, Value::Arg(2));
        b.add_phi_incoming(up, el, Value::Arg(0));
        let lo = b.phi(Type::I64);
        b.add_phi_incoming(lo, t, Value::Arg(1));
        b.add_phi_incoming(lo, el, Value::Arg(2));
        let d = b.sub(up, lo);
        b.ret(Some(d));
        uu_ir::verify_function(&f).unwrap();
        assert!(IfConvert.run(&mut f));
        uu_ir::verify_function(&f).unwrap_or_else(|er| panic!("{er}\n{f}"));
        let selects = f
            .iter_insts()
            .filter(|(_, i)| matches!(i.kind, InstKind::Select { .. }))
            .count();
        assert_eq!(selects, 2, "{f}");
        // No conditional branch remains.
        let condbrs = f
            .iter_insts()
            .filter(|(_, i)| matches!(i.kind, InstKind::CondBr { .. }))
            .count();
        assert_eq!(condbrs, 0);
    }

    /// The complex pattern: if (n & 1) { a *= a0; c = c*a0 + c0 }.
    #[test]
    fn triangle_with_cheap_body_is_predicated() {
        let mut f = uu_ir::Function::new(
            "t",
            vec![
                Param::new("a", Type::F64),
                Param::new("a0", Type::F64),
                Param::new("n", Type::I64),
            ],
            Type::F64,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let side = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        let bit = b.and(Value::Arg(2), Value::imm(1i64));
        let odd = b.icmp(ICmpPred::Ne, bit, Value::imm(0i64));
        b.cond_br(odd, side, j);
        b.switch_to(side);
        let anew = b.fmul(Value::Arg(0), Value::Arg(1));
        b.br(j);
        b.switch_to(j);
        let am = b.phi(Type::F64);
        b.add_phi_incoming(am, side, anew);
        b.add_phi_incoming(am, e, Value::Arg(0));
        b.ret(Some(am));
        assert!(IfConvert.run(&mut f));
        uu_ir::verify_function(&f).unwrap_or_else(|er| panic!("{er}\n{f}"));
        let selects = f
            .iter_insts()
            .filter(|(_, i)| matches!(i.kind, InstKind::Select { .. }))
            .count();
        assert_eq!(selects, 1);
        assert_eq!(f.num_blocks(), 2);
    }

    #[test]
    fn memory_side_blocks_are_not_converted() {
        let mut f = uu_ir::Function::new(
            "t",
            vec![Param::new("p", Type::Ptr), Param::new("c", Type::I1)],
            Type::Void,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let side = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        b.cond_br(Value::Arg(1), side, j);
        b.switch_to(side);
        b.store(Value::Arg(0), Value::imm(1i64)); // side effect
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        assert!(!IfConvert.run(&mut f));
    }

    #[test]
    fn expensive_side_blocks_are_not_converted() {
        let mut f = uu_ir::Function::new(
            "t",
            vec![Param::new("x", Type::I64), Param::new("c", Type::I1)],
            Type::I64,
        );
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let side = b.create_block();
        let j = b.create_block();
        b.switch_to(e);
        b.cond_br(Value::Arg(1), side, j);
        b.switch_to(side);
        let mut v = Value::Arg(0);
        for k in 0..9 {
            v = b.add(v, Value::imm(k as i64));
        }
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I64);
        b.add_phi_incoming(p, side, v);
        b.add_phi_incoming(p, e, Value::Arg(0));
        b.ret(Some(p));
        assert!(!IfConvert.run(&mut f));
    }
}

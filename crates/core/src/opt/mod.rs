//! The `-O3`-style cleanup optimizer.
//!
//! The paper's transformation does not speed anything up by itself — it
//! *enables subsequent optimizations* (§III). This module provides those
//! subsequent optimizations as real, from-scratch passes:
//!
//! * [`instsimplify`] — constant folding + algebraic simplification
//!   (including the `(a + b) - a → b` rule behind the XSBench subtraction
//!   elimination);
//! * [`sccp`] — sparse conditional constant propagation with executable-edge
//!   tracking (kills the back edge of fully unrolled counted loops);
//! * [`gvn`] — dominator-scoped value numbering with alias-aware redundant
//!   load elimination and store-to-load forwarding (the rainflow load
//!   eliminations; honours `__restrict__`);
//! * [`condprop`] — branch-condition propagation: below a conditional edge
//!   the condition value (and equality facts) are known, which is exactly
//!   the provenance information unmerging exposes;
//! * [`simplifycfg`] — branch folding, block merging, jump threading and
//!   unreachable-code removal;
//! * [`dce`] — dead code elimination;
//! * [`ifconvert`] — select formation (predication), the reason the
//!   *baseline* compiles branchy loop bodies into PTX `selp` instructions.
//!
//! [`meld`] is the odd one out: not cleanup but a rival transform —
//! DARM-style control-flow melding of divergent diamonds, run head-to-head
//! against unmerging by the harness's three-way study.

pub mod condprop;
pub mod dce;
pub mod gvn;
pub mod ifconvert;
pub mod instsimplify;
pub mod meld;
pub mod sccp;
pub mod simplifycfg;

use uu_analysis::AnalysisCache;
use uu_ir::Function;

/// A function-level transformation.
pub trait Pass {
    /// Stable pass name (used in compile-time accounting).
    fn name(&self) -> &'static str;
    /// Run on one function; returns whether anything changed.
    fn run(&mut self, f: &mut Function) -> bool;
    /// Whether every change this pass can make leaves the CFG (block set,
    /// layout and edges) intact. The pass manager keeps cached dominators
    /// and loops alive across invocations of CFG-preserving passes and
    /// invalidates them after any other pass that reports a change.
    fn preserves_cfg(&self) -> bool {
        false
    }
    /// Run with access to the per-function [`AnalysisCache`]. Passes that
    /// consume dominators or loops override this to pull them from the
    /// cache instead of recomputing; the default ignores the cache.
    fn run_with(&mut self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
        let _ = cache;
        self.run(f)
    }
}

/// Run the standard cleanup sequence to a fixed point (bounded by
/// `max_rounds`). Returns the number of rounds that made progress.
pub fn run_cleanup(f: &mut Function, max_rounds: usize) -> usize {
    let mut cache = AnalysisCache::new();
    let mut rounds = 0;
    for _ in 0..max_rounds {
        let mut changed = false;
        macro_rules! step {
            ($pass:expr) => {{
                let mut p = $pass;
                let c = p.run_with(f, &mut cache);
                if c && !p.preserves_cfg() {
                    cache.invalidate();
                }
                changed |= c;
            }};
        }
        step!(simplifycfg::SimplifyCfg::default());
        step!(instsimplify::InstSimplify);
        step!(sccp::Sccp);
        step!(simplifycfg::SimplifyCfg::default());
        step!(gvn::Gvn);
        step!(condprop::CondProp);
        step!(dce::Dce);
        if !changed {
            break;
        }
        rounds += 1;
    }
    rounds
}

//! Cloning of CFG regions with value remapping.
//!
//! Both loop unrolling and control-flow unmerging are, at heart, "clone this
//! set of blocks and rewire" operations. This module provides the shared
//! machinery: a deep copy of a block set whose internal edges and value uses
//! point into the copy, while references to anything defined outside the set
//! are left untouched.

use uu_ir::{BlockId, Function, InstId, InstKind, SecondaryMap, Value};

/// The result of cloning a region: mappings from original blocks and
/// instructions to their copies (dense tables keyed on the arena ids).
#[derive(Debug, Clone, Default)]
pub struct CloneMap {
    /// Original block → cloned block.
    blocks: SecondaryMap<BlockId, Option<BlockId>>,
    /// Original instruction → cloned instruction.
    insts: SecondaryMap<InstId, Option<InstId>>,
}

impl CloneMap {
    /// Map a value through the clone: instruction results defined inside the
    /// cloned region map to their copies, everything else is unchanged.
    pub fn map_value(&self, v: Value) -> Value {
        match v {
            Value::Inst(id) => match *self.insts.get(id) {
                Some(n) => Value::Inst(n),
                None => v,
            },
            other => other,
        }
    }

    /// Map a block through the clone (identity for blocks outside the
    /// region).
    pub fn map_block(&self, b: BlockId) -> BlockId {
        self.blocks.get(b).unwrap_or(b)
    }

    /// The clone of instruction `i`, if `i` was inside the cloned region.
    pub fn inst(&self, i: InstId) -> Option<InstId> {
        *self.insts.get(i)
    }

    /// The cloned blocks, in original-block index order.
    pub fn cloned_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks.iter().filter_map(|(_, v)| *v)
    }

    /// The cloned instructions, in original-instruction index order.
    pub fn cloned_insts(&self) -> impl Iterator<Item = InstId> + '_ {
        self.insts.iter().filter_map(|(_, v)| *v)
    }
}

/// Clone the given blocks (and all their instructions) into fresh blocks.
///
/// * Edges between cloned blocks are redirected into the copy.
/// * Edges leaving the region keep their original targets.
/// * Operand uses of instructions inside the region are remapped; uses of
///   values defined outside are kept.
/// * Phi incoming *labels* from blocks inside the region are remapped;
///   labels from outside blocks are kept (callers typically rewrite these).
///
/// Callers are responsible for making the clone reachable and for updating
/// phis in region successors (see [`add_phi_incomings_for_clone`]).
pub fn clone_region(f: &mut Function, blocks: &[BlockId]) -> CloneMap {
    let mut map = CloneMap::default();
    // Pass 1: create empty clone blocks.
    for &b in blocks {
        let nb = f.add_block();
        map.blocks.set(b, Some(nb));
    }
    // Pass 2: clone instructions (operands still original).
    for &b in blocks {
        let nb = map.map_block(b);
        let insts: Vec<InstId> = f.block(b).insts.clone();
        for i in insts {
            let inst = f.inst(i).clone();
            let ni = f.append_inst(nb, inst);
            map.insts.set(i, Some(ni));
        }
    }
    // Pass 3: remap operands, branch targets and phi labels inside clones.
    let cloned: Vec<InstId> = map.cloned_insts().collect();
    for ni in cloned {
        let mut kind = f.inst(ni).kind.clone();
        kind.for_each_operand_mut(|v| *v = map.map_value(*v));
        match &mut kind {
            InstKind::Br { target } => *target = map.map_block(*target),
            InstKind::CondBr {
                if_true, if_false, ..
            } => {
                *if_true = map.map_block(*if_true);
                *if_false = map.map_block(*if_false);
            }
            InstKind::Phi { incomings } => {
                for (b, _) in incomings {
                    *b = map.map_block(*b);
                }
            }
            _ => {}
        }
        f.inst_mut(ni).kind = kind;
    }
    map
}

/// For every phi in `succ` with an incoming from `orig_pred` (a block that
/// was cloned), add a parallel incoming from the clone of `orig_pred`
/// carrying the remapped value.
///
/// Call this for each edge from the cloned region to an *unduplicated*
/// successor (loop headers on back edges, exit blocks, downstream merge
/// blocks).
pub fn add_phi_incomings_for_clone(
    f: &mut Function,
    succ: BlockId,
    orig_pred: BlockId,
    map: &CloneMap,
) {
    let new_pred = map.map_block(orig_pred);
    if new_pred == orig_pred {
        return;
    }
    for phi in f.phis(succ) {
        let mut addition = None;
        if let InstKind::Phi { incomings } = &f.inst(phi).kind {
            for (b, v) in incomings {
                if *b == orig_pred {
                    addition = Some((new_pred, map.map_value(*v)));
                }
            }
        }
        if let Some(pair) = addition {
            if let InstKind::Phi { incomings } = &mut f.inst_mut(phi).kind {
                incomings.push(pair);
            }
        }
    }
}

/// Remove the phi incomings in `succ` coming from `pred`.
pub fn remove_phi_incomings_from(f: &mut Function, succ: BlockId, pred: BlockId) {
    for phi in f.phis(succ) {
        if let InstKind::Phi { incomings } = &mut f.inst_mut(phi).kind {
            incomings.retain(|(b, _)| *b != pred);
        }
    }
}

/// Replace single-incoming phis in `block` by their value and unlink them.
/// Returns the number of phis resolved.
pub fn resolve_trivial_phis(f: &mut Function, block: BlockId) -> usize {
    let mut resolved = 0;
    for phi in f.phis(block) {
        let repl = match &f.inst(phi).kind {
            InstKind::Phi { incomings } if incomings.len() == 1 => Some(incomings[0].1),
            _ => None,
        };
        if let Some(v) = repl {
            f.replace_all_uses(Value::Inst(phi), v);
            f.unlink_inst(block, phi);
            resolved += 1;
        }
    }
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type};

    /// entry -> h -> body -> h (loop), h -> exit
    fn simple_loop() -> (uu_ir::Function, BlockId, BlockId, BlockId) {
        let mut f = uu_ir::Function::new("k", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        (f, h, body, exit)
    }

    #[test]
    fn clones_blocks_and_remaps_internal_edges() {
        let (mut f, h, body, _exit) = simple_loop();
        let n_before = f.num_blocks();
        let map = clone_region(&mut f, &[h, body]);
        assert_eq!(f.num_blocks(), n_before + 2);
        let nh = map.map_block(h);
        let nbody = map.map_block(body);
        // Cloned header branches to cloned body (internal edge remapped)
        // and to the original exit (external edge kept).
        let succs = f.successors(nh);
        assert!(succs.contains(&nbody));
        assert!(succs.contains(&BlockId::from_index(3)));
        // Cloned body's backedge points at the cloned header.
        assert_eq!(f.successors(nbody), vec![nh]);
    }

    #[test]
    fn clones_remap_values() {
        let (mut f, h, body, _) = simple_loop();
        let phi = f.phis(h)[0];
        let map = clone_region(&mut f, &[h, body]);
        let nphi = map.inst(phi).unwrap();
        let nbody = map.map_block(body);
        // The cloned add uses the cloned phi.
        let nadd = f.block(nbody).insts[0];
        match &f.inst(nadd).kind {
            InstKind::Bin { lhs, .. } => assert_eq!(*lhs, Value::Inst(nphi)),
            _ => unreachable!(),
        }
        // map_value is identity on constants and unknown insts.
        assert_eq!(map.map_value(Value::imm(1i32)), Value::imm(1i32));
        assert_eq!(map.map_value(Value::Arg(0)), Value::Arg(0));
    }

    #[test]
    fn phi_incomings_for_clone() {
        let (mut f, h, body, exit) = simple_loop();
        // Clone body only; header should then accept an incoming from the
        // cloned body too (as if it were an extra latch).
        let map = clone_region(&mut f, &[body]);
        add_phi_incomings_for_clone(&mut f, h, body, &map);
        let phi = f.phis(h)[0];
        match &f.inst(phi).kind {
            InstKind::Phi { incomings } => {
                assert_eq!(incomings.len(), 3);
                assert!(incomings.iter().any(|(b, _)| *b == map.map_block(body)));
            }
            _ => unreachable!(),
        }
        // And exit is untouched (body doesn't branch to exit).
        assert_eq!(f.phis(exit).len(), 0);
    }

    #[test]
    fn remove_and_resolve_phis() {
        let (mut f, h, body, _) = simple_loop();
        remove_phi_incomings_from(&mut f, h, body);
        let phi = f.phis(h)[0];
        match &f.inst(phi).kind {
            InstKind::Phi { incomings } => assert_eq!(incomings.len(), 1),
            _ => unreachable!(),
        }
        let n = resolve_trivial_phis(&mut f, h);
        assert_eq!(n, 1);
        assert!(f.phis(h).is_empty());
        // The add in body now uses the constant 0 directly.
        let add = f.block(body).insts[0];
        match &f.inst(add).kind {
            InstKind::Bin { lhs, .. } => assert_eq!(*lhs, Value::imm(0i64)),
            _ => unreachable!(),
        }
    }

    use uu_ir::Value;
}

//! Pipeline configurations and the pass manager.
//!
//! Reproduces the paper's five measurement configurations (§IV-B):
//!
//! * **baseline** — the `-O3` stand-in: cleanup, baseline unrolling,
//!   if-conversion (predication), cleanup;
//! * **unroll** — baseline + force-unrolling the selected loop(s) with the
//!   stock unroller (no unmerging);
//! * **unmerge** — baseline + the u&u pass with factor 1;
//! * **u&u** — baseline + unroll-and-unmerge at a given factor;
//! * **u&u heuristic** — baseline + the §III-C heuristic (`c = 1024`,
//!   `u_max = 8`).
//!
//! All transform configurations insert the pass *early* in the pipeline, as
//! the paper does, so every subsequent optimization can exploit the
//! duplicated control flow. [`PassPosition::Late`] exists for the ablation
//! showing why a late position is ineffective.

use crate::baseline_unroll::{baseline_unroll, BaselineUnrollOptions};
use crate::heuristic::{run_heuristic, HeuristicOptions, LoopDecision};
use crate::opt::{
    condprop::CondProp, dce::Dce, gvn::Gvn, ifconvert::IfConvert, instsimplify::InstSimplify,
    sccp::Sccp, simplifycfg::SimplifyCfg, Pass,
};
use crate::unmerge::UnmergeOptions;
use crate::unroll::unroll_loop;
use crate::uu::{uu_loop, UuOptions};
use std::time::{Duration, Instant};
use uu_analysis::{DomTree, LoopForest};
use uu_ir::Module;

/// Which transform (if any) the pipeline applies on top of the baseline.
#[derive(Debug, Clone)]
pub enum Transform {
    /// Plain `-O3` stand-in.
    Baseline,
    /// Stock loop unrolling of the selected loops by `factor`.
    Unroll {
        /// Unroll factor.
        factor: u32,
    },
    /// Unmerge-only (u&u with factor 1).
    Unmerge,
    /// Unroll-and-unmerge at `factor`.
    Uu {
        /// Unroll factor.
        factor: u32,
        /// Unmerge cascade options.
        unmerge: UnmergeOptions,
    },
    /// The size heuristic deciding per-loop factors.
    UuHeuristic(HeuristicOptions),
}

/// Which loops the transform applies to.
#[derive(Debug, Clone, Default)]
pub enum LoopFilter {
    /// All loops of all functions (the heuristic always works this way).
    #[default]
    All,
    /// Only the loop with the given deterministic id in the given function.
    ///
    /// Loop ids follow [`LoopForest`] order (header reverse post-order),
    /// matching the paper's "consistent, deterministic unique ids" that let
    /// users select loops on the command line.
    Only {
        /// Function name.
        func: String,
        /// Deterministic loop index within the function.
        loop_id: usize,
    },
}

/// Where the transform sits in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PassPosition {
    /// Before all cleanup (the paper's choice).
    #[default]
    Early,
    /// After cleanup and if-conversion, with only one cleanup round after —
    /// the ablation position the paper argues is ineffective.
    Late,
}

/// Full pipeline options.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// The transform configuration.
    pub transform: Transform,
    /// Loop selection.
    pub filter: LoopFilter,
    /// Transform position.
    pub position: PassPosition,
    /// Maximum cleanup fixpoint rounds per stage.
    pub max_rounds: usize,
    /// Baseline unroller thresholds.
    pub baseline_unroll: BaselineUnrollOptions,
    /// Abort compilation when exceeded (the paper's ccs runs hit a 5-minute
    /// timeout at factor 4+). Interpreted on the deterministic compile
    /// clock (see [`WORK_PER_MS`]), not wall time, so whether a
    /// configuration times out is a pure function of the input.
    pub timeout: Option<Duration>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            transform: Transform::Baseline,
            filter: LoopFilter::All,
            position: PassPosition::Early,
            max_rounds: 8,
            baseline_unroll: BaselineUnrollOptions::default(),
            timeout: None,
        }
    }
}

impl PipelineOptions {
    /// Convenience constructor for a named configuration applied to one
    /// loop.
    pub fn for_loop(transform: Transform, func: &str, loop_id: usize) -> Self {
        PipelineOptions {
            transform,
            filter: LoopFilter::Only {
                func: func.to_string(),
                loop_id,
            },
            ..Default::default()
        }
    }
}

/// Wall-clock attribution per pass (the paper's Figure 6c measures compile
/// time; §IV notes most of it is spent in the constant-propagation pass
/// processing duplicated code, not in u&u itself).
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// Pass name.
    pub name: &'static str,
    /// Accumulated wall time.
    pub elapsed: Duration,
}

/// Deterministic compile-clock calibration: modeled work units per
/// millisecond. Every pass invocation charges the size of the function it
/// just processed, so modeled compile time grows with duplicated code the
/// same way the paper's Figure 6c wall clock does — but it is a pure
/// function of the input module and options, which is what lets sweep
/// reports be byte-identical across runs and worker counts.
///
/// Calibrated against release-build wall clock on the bundled benchmarks
/// (≈100 units/ms), so modeled compile times — and the Figure 6c ratios
/// on top of the harness's frontend stand-in — stay on the familiar
/// milliseconds scale.
pub const WORK_PER_MS: f64 = 100.0;

/// Result of compiling a module.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// Per-pass timings, aggregated over rounds and functions.
    pub timings: Vec<PassTiming>,
    /// Total wall time. Diagnostics only — derive metrics from [`work`]
    /// instead, which is deterministic.
    ///
    /// [`work`]: CompileOutcome::work
    pub total: Duration,
    /// Modeled compile work in deterministic units (see [`WORK_PER_MS`]):
    /// the sum over pass invocations of the processed function's size.
    pub work: u64,
    /// Whether the timeout fired (compilation stopped early but the IR is
    /// valid).
    pub timed_out: bool,
    /// Heuristic decisions (only for [`Transform::UuHeuristic`]).
    pub decisions: Vec<(String, LoopDecision)>,
}

impl CompileOutcome {
    /// Time attributed to `name`.
    pub fn time_of(&self, name: &str) -> Duration {
        self.timings
            .iter()
            .filter(|t| t.name == name)
            .map(|t| t.elapsed)
            .sum()
    }
}

struct Timer {
    timings: Vec<PassTiming>,
    start: Instant,
    work: u64,
    work_budget: Option<u64>,
    timed_out: bool,
}

impl Timer {
    fn new(timeout: Option<Duration>) -> Self {
        Timer {
            timings: Vec::new(),
            start: Instant::now(),
            work: 0,
            work_budget: timeout.map(|t| (t.as_secs_f64() * 1e3 * WORK_PER_MS) as u64),
            timed_out: false,
        }
    }

    /// Record one pass invocation: wall time for the diagnostic breakdown,
    /// plus `work` deterministic units (the processed function's size)
    /// driving the modeled clock and the timeout.
    fn record(&mut self, name: &'static str, elapsed: Duration, work: u64) {
        match self.timings.iter_mut().find(|t| t.name == name) {
            Some(t) => t.elapsed += elapsed,
            None => self.timings.push(PassTiming { name, elapsed }),
        }
        self.work += work;
        if let Some(b) = self.work_budget {
            if self.work > b {
                self.timed_out = true;
            }
        }
    }
}

/// Compile (optimize) a module under the given configuration.
pub fn compile(m: &mut Module, opts: &PipelineOptions) -> CompileOutcome {
    let mut timer = Timer::new(opts.timeout);
    let mut decisions = Vec::new();

    if opts.position == PassPosition::Early {
        apply_transform(m, opts, &mut timer, &mut decisions);
    }
    optimize_module(m, opts, &mut timer);
    if opts.position == PassPosition::Late && !timer.timed_out {
        apply_transform(m, opts, &mut timer, &mut decisions);
        // A single cleanup round after — the point of the ablation is that
        // the pipeline does not restart.
        let funcs: Vec<_> = m.iter().map(|(id, _)| id).collect();
        for id in funcs {
            run_timed_cleanup(m.function_mut(id), 1, &mut timer);
        }
    }

    CompileOutcome {
        total: timer.start.elapsed(),
        work: timer.work,
        timed_out: timer.timed_out,
        timings: timer.timings,
        decisions,
    }
}

fn apply_transform(
    m: &mut Module,
    opts: &PipelineOptions,
    timer: &mut Timer,
    decisions: &mut Vec<(String, LoopDecision)>,
) {
    let funcs: Vec<_> = m.iter().map(|(id, _)| id).collect();
    for id in funcs {
        if timer.timed_out {
            return;
        }
        let fname = m.function(id).name().to_string();
        let f = m.function_mut(id);
        // Determine target loop headers under the filter.
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        let headers: Vec<uu_ir::BlockId> = match &opts.filter {
            LoopFilter::All => forest.loops().iter().map(|l| l.header).collect(),
            LoopFilter::Only { func, loop_id } => {
                if *func != fname || *loop_id >= forest.len() {
                    continue;
                }
                vec![forest.loops()[*loop_id].header]
            }
        };
        let t0 = Instant::now();
        match &opts.transform {
            Transform::Baseline => {}
            Transform::Unroll { factor } => {
                for h in headers {
                    let dom = DomTree::compute(f);
                    let forest = LoopForest::compute(f, &dom);
                    if let Some(l) = forest.loops().iter().find(|l| l.header == h).cloned() {
                        if uu_analysis::convergence::loop_has_convergent(
                            f,
                            &forest,
                            uu_analysis::LoopId(
                                forest.loops().iter().position(|x| x.header == h).unwrap(),
                            ),
                        ) {
                            continue;
                        }
                        if unroll_loop(f, l.header, &l.blocks, &l.latches, *factor).is_some() {
                            // The stock unroller owns this loop now.
                            f.set_loop_pragma(h, uu_ir::LoopPragma::NoUnroll);
                        }
                    }
                }
                timer.record("unroll", t0.elapsed(), uu_analysis::cost::function_size(f));
            }
            Transform::Unmerge => {
                for h in headers {
                    uu_loop(
                        f,
                        h,
                        &UuOptions {
                            factor: 1,
                            ..Default::default()
                        },
                    );
                }
                timer.record("unmerge", t0.elapsed(), uu_analysis::cost::function_size(f));
            }
            Transform::Uu { factor, unmerge } => {
                for h in headers {
                    uu_loop(
                        f,
                        h,
                        &UuOptions {
                            factor: *factor,
                            unmerge: *unmerge,
                            ..Default::default()
                        },
                    );
                }
                timer.record("uu", t0.elapsed(), uu_analysis::cost::function_size(f));
            }
            Transform::UuHeuristic(hopts) => {
                for d in run_heuristic(f, hopts) {
                    decisions.push((fname.clone(), d));
                }
                timer.record("uu-heuristic", t0.elapsed(), uu_analysis::cost::function_size(f));
            }
        }
    }
}

fn optimize_module(m: &mut Module, opts: &PipelineOptions, timer: &mut Timer) {
    let funcs: Vec<_> = m.iter().map(|(id, _)| id).collect();
    for id in funcs {
        if timer.timed_out {
            return;
        }
        let f = m.function_mut(id);
        run_timed_cleanup(f, opts.max_rounds, timer);
        if timer.timed_out {
            return;
        }
        let t0 = Instant::now();
        baseline_unroll(f, &opts.baseline_unroll);
        timer.record("baseline-unroll", t0.elapsed(), uu_analysis::cost::function_size(f));
        run_timed_cleanup(f, opts.max_rounds, timer);
        if timer.timed_out {
            return;
        }
        let t0 = Instant::now();
        IfConvert.run(f);
        timer.record("ifconvert", t0.elapsed(), uu_analysis::cost::function_size(f));
        run_timed_cleanup(f, opts.max_rounds, timer);
    }
}

fn run_timed_cleanup(f: &mut uu_ir::Function, max_rounds: usize, timer: &mut Timer) {
    for _ in 0..max_rounds {
        if timer.timed_out {
            return;
        }
        let mut changed = false;
        macro_rules! timed {
            ($pass:expr) => {{
                let mut p = $pass;
                let t0 = Instant::now();
                let c = p.run(f);
                timer.record(p.name(), t0.elapsed(), uu_analysis::cost::function_size(f));
                changed |= c;
            }};
        }
        timed!(SimplifyCfg::default());
        timed!(InstSimplify);
        timed!(Sccp);
        timed!(SimplifyCfg::default());
        timed!(Gvn);
        timed!(CondProp);
        timed!(Dce);
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type, Value};

    fn branchy_module() -> Module {
        let mut f = uu_ir::Function::new(
            "k",
            vec![Param::new("n", Type::I64), Param::new("c", Type::I1)],
            Type::I64,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let t = b.create_block();
        let e2 = b.create_block();
        let m = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, t, exit);
        b.switch_to(t);
        b.cond_br(Value::Arg(1), e2, m);
        b.switch_to(e2);
        b.br(m);
        b.switch_to(m);
        let p = b.phi(Type::I64);
        b.add_phi_incoming(p, t, Value::imm(1i64));
        b.add_phi_incoming(p, e2, Value::imm(2i64));
        let i1 = b.add(i, p);
        b.add_phi_incoming(i, m, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut m_ = Module::new("t");
        m_.add_function(f);
        m_
    }

    #[test]
    fn all_configs_produce_valid_ir() {
        for transform in [
            Transform::Baseline,
            Transform::Unroll { factor: 2 },
            Transform::Unmerge,
            Transform::Uu {
                factor: 2,
                unmerge: UnmergeOptions::default(),
            },
            Transform::UuHeuristic(HeuristicOptions::default()),
        ] {
            let mut m = branchy_module();
            let opts = PipelineOptions {
                transform,
                ..Default::default()
            };
            let out = compile(&mut m, &opts);
            assert!(!out.timed_out);
            uu_ir::verify_module(&m)
                .unwrap_or_else(|e| panic!("{e}\nconfig {:?}", opts.transform));
        }
    }

    #[test]
    fn baseline_ifconverts_the_diamond() {
        let mut m = branchy_module();
        compile(&mut m, &PipelineOptions::default());
        let f = m.function(uu_ir::FuncId::from_index(0));
        let selects = f
            .iter_insts()
            .filter(|(_, i)| matches!(i.kind, uu_ir::InstKind::Select { .. }))
            .count();
        assert!(selects >= 1, "baseline should predicate:\n{f}");
    }

    #[test]
    fn uu_leaves_no_selects_in_unmerged_body() {
        let mut m = branchy_module();
        compile(
            &mut m,
            &PipelineOptions {
                transform: Transform::Uu {
                    factor: 2,
                    unmerge: UnmergeOptions::default(),
                },
                ..Default::default()
            },
        );
        let f = m.function(uu_ir::FuncId::from_index(0));
        let selects = f
            .iter_insts()
            .filter(|(_, i)| matches!(i.kind, uu_ir::InstKind::Select { .. }))
            .count();
        assert_eq!(selects, 0, "u&u replaces predication with branches:\n{f}");
    }

    #[test]
    fn loop_filter_restricts_to_named_loop() {
        let mut m = branchy_module();
        let before = m.total_insts();
        compile(
            &mut m,
            &PipelineOptions::for_loop(
                Transform::Uu {
                    factor: 4,
                    unmerge: UnmergeOptions::default(),
                },
                "nonexistent",
                0,
            ),
        );
        // Transform targeted a nonexistent function: only baseline cleanup
        // ran. The loop body survives (baseline may still simplify a bit).
        let after = m.total_insts();
        assert!(after <= before);
    }

    /// The paper's argument for placing u&u early: a late placement leaves
    /// the subsequent optimizations no room to exploit the duplication, so
    /// the late-compiled kernel retains (at best) baseline-level cleanup.
    #[test]
    fn late_position_is_less_effective() {
        let run = |pos| {
            let mut m = branchy_module();
            compile(
                &mut m,
                &PipelineOptions {
                    transform: Transform::Uu {
                        factor: 2,
                        unmerge: UnmergeOptions::default(),
                    },
                    position: pos,
                    ..Default::default()
                },
            );
            uu_ir::verify_module(&m).unwrap();
            let f = m.function(uu_ir::FuncId::from_index(0));
            f.iter_insts()
                .filter(|(_, i)| matches!(i.kind, uu_ir::InstKind::Select { .. }))
                .count()
        };
        let early = run(PassPosition::Early);
        let late = run(PassPosition::Late);
        // Early u&u pre-empts predication and specializes the paths (no
        // selects); placed late, the body was already if-converted, so the
        // duplication finds nothing to unmerge and the selects survive —
        // the pass is ineffective.
        assert_eq!(early, 0, "early u&u must remove all predication");
        assert!(late > 0, "late u&u leaves the baseline's selects in place");
    }

    #[test]
    fn timings_are_recorded() {
        let mut m = branchy_module();
        let out = compile(&mut m, &PipelineOptions::default());
        assert!(out.timings.iter().any(|t| t.name == "sccp"));
        assert!(out.timings.iter().any(|t| t.name == "gvn"));
        assert!(out.total >= out.time_of("sccp"));
    }

    #[test]
    fn compile_work_is_deterministic() {
        // The modeled compile clock must be a pure function of the input;
        // wall clock is diagnostics only.
        let run = |transform: Transform| {
            let mut m = branchy_module();
            let out = compile(
                &mut m,
                &PipelineOptions {
                    transform,
                    ..Default::default()
                },
            );
            (out.work, out.timed_out)
        };
        for transform in [
            Transform::Baseline,
            Transform::Uu {
                factor: 4,
                unmerge: UnmergeOptions::default(),
            },
        ] {
            let a = run(transform.clone());
            let b = run(transform);
            assert_eq!(a, b);
            assert!(a.0 > 0, "compiling must cost work");
        }
    }

    #[test]
    fn work_budget_timeout_fires_deterministically() {
        // A one-work-unit budget trips on the first pass, every time,
        // independent of machine speed — and leaves valid IR behind.
        let run = || {
            let mut m = branchy_module();
            let out = compile(
                &mut m,
                &PipelineOptions {
                    timeout: Some(Duration::from_nanos(1)),
                    ..Default::default()
                },
            );
            uu_ir::verify_module(&m).unwrap();
            (out.timed_out, out.work)
        };
        let a = run();
        let b = run();
        assert!(a.0, "tiny budget must time out");
        assert_eq!(a, b);
    }
}

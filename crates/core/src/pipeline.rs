//! Pipeline configurations and the fault-tolerant pass manager.
//!
//! Reproduces the paper's five measurement configurations (§IV-B):
//!
//! * **baseline** — the `-O3` stand-in: cleanup, baseline unrolling,
//!   if-conversion (predication), cleanup;
//! * **unroll** — baseline + force-unrolling the selected loop(s) with the
//!   stock unroller (no unmerging);
//! * **unmerge** — baseline + the u&u pass with factor 1;
//! * **u&u** — baseline + unroll-and-unmerge at a given factor;
//! * **u&u heuristic** — baseline + the §III-C heuristic (`c = 1024`,
//!   `u_max = 8`).
//!
//! All transform configurations insert the pass *early* in the pipeline, as
//! the paper does, so every subsequent optimization can exploit the
//! duplicated control flow. [`PassPosition::Late`] exists for the ablation
//! showing why a late position is ineffective.
//!
//! ## Crash recovery
//!
//! Every pass invocation is *guarded* (see [`crate::recover`]): the
//! function is snapshotted, the pass runs under `catch_unwind`, and any
//! change is re-verified. A panicking or verifier-rejected pass is rolled
//! back and recorded as a [`PassFailure`] instead of aborting the compile;
//! [`CompileOutcome::rung`] reports which rung of the degradation ladder
//! the compile landed on. An opt-bisect limit
//! ([`PipelineOptions::bisect_limit`]) skips pass invocations past a
//! given index, which is what lets `uu-check` binary-search a miscompile
//! down to the first bad pass.

use crate::baseline_unroll::{baseline_unroll, BaselineUnrollOptions};
use crate::heuristic::{run_heuristic, HeuristicOptions, LoopDecision};
use crate::opt::{
    condprop::CondProp, dce::Dce, gvn::Gvn, ifconvert::IfConvert, instsimplify::InstSimplify,
    sccp::Sccp, simplifycfg::SimplifyCfg, Pass,
};
use crate::recover::{
    corrupt_function, miscompile_function, panic_message, FailureReason, FaultKind, FaultPlan,
    PassFailure, PassInvocation, Rung,
};
use crate::unmerge::UnmergeOptions;
use crate::unroll::unroll_loop;
use crate::uu::{uu_loop, UuOptions};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};
use uu_analysis::{AnalysisCache, DomTree, LoopForest};
use uu_ir::Module;

/// Which transform (if any) the pipeline applies on top of the baseline.
#[derive(Debug, Clone)]
pub enum Transform {
    /// Plain `-O3` stand-in.
    Baseline,
    /// Stock loop unrolling of the selected loops by `factor`.
    Unroll {
        /// Unroll factor.
        factor: u32,
    },
    /// Unmerge-only (u&u with factor 1).
    Unmerge,
    /// Unroll-and-unmerge at `factor`.
    Uu {
        /// Unroll factor.
        factor: u32,
        /// Unmerge cascade options.
        unmerge: UnmergeOptions,
    },
    /// The size heuristic deciding per-loop factors.
    UuHeuristic(HeuristicOptions),
    /// DARM-style control-flow melding of divergent diamonds in the
    /// selected loops (see [`crate::opt::meld`]) — the rival philosophy the
    /// three-way study compares against unmerging.
    Meld,
    /// Unroll-and-unmerge at `factor`, then meld whatever divergent
    /// diamonds remain in the selected loops — the "both" leg of the
    /// three-way study.
    UuMeld {
        /// Unroll factor for the u&u step.
        factor: u32,
        /// Unmerge cascade options for the u&u step.
        unmerge: UnmergeOptions,
    },
}

/// Which loops the transform applies to.
#[derive(Debug, Clone, Default)]
pub enum LoopFilter {
    /// All loops of all functions (the heuristic always works this way).
    #[default]
    All,
    /// Only the loop with the given deterministic id in the given function.
    ///
    /// Loop ids follow [`LoopForest`] order (header reverse post-order),
    /// matching the paper's "consistent, deterministic unique ids" that let
    /// users select loops on the command line.
    Only {
        /// Function name.
        func: String,
        /// Deterministic loop index within the function.
        loop_id: usize,
    },
}

/// Where the transform sits in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PassPosition {
    /// Before all cleanup (the paper's choice).
    #[default]
    Early,
    /// After cleanup and if-conversion, with only one cleanup round after —
    /// the ablation position the paper argues is ineffective.
    Late,
}

/// Full pipeline options.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// The transform configuration.
    pub transform: Transform,
    /// Loop selection.
    pub filter: LoopFilter,
    /// Transform position.
    pub position: PassPosition,
    /// Maximum cleanup fixpoint rounds per stage.
    pub max_rounds: usize,
    /// Baseline unroller thresholds.
    pub baseline_unroll: BaselineUnrollOptions,
    /// Abort compilation when exceeded (the paper's ccs runs hit a 5-minute
    /// timeout at factor 4+). Interpreted on the deterministic compile
    /// clock (see [`WORK_PER_MS`]), not wall time, so whether a
    /// configuration times out is a pure function of the input.
    pub timeout: Option<Duration>,
    /// Guard every pass invocation with `catch_unwind` + snapshot +
    /// post-pass verification, walking the degradation ladder on failure.
    /// On (the default) for every production path; turning it off
    /// reproduces the old abort-on-first-failure behaviour for debugging.
    pub guard: bool,
    /// Deterministic fault-injection plan (see [`FaultPlan`]); `None` in
    /// production. [`FaultKind::Mem`] plans are ignored here — they target
    /// the simulator and are armed by the harness.
    pub fault: Option<FaultPlan>,
    /// Opt-bisect limit: pass invocations with index `>= limit` are
    /// skipped (LLVM's `-opt-bisect-limit`). Invocation `i` behaves
    /// identically under every limit `> i`, so a binary search over the
    /// limit pinpoints the first bad pass.
    pub bisect_limit: Option<u64>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            transform: Transform::Baseline,
            filter: LoopFilter::All,
            position: PassPosition::Early,
            max_rounds: 8,
            baseline_unroll: BaselineUnrollOptions::default(),
            timeout: None,
            guard: true,
            fault: None,
            bisect_limit: None,
        }
    }
}

impl PipelineOptions {
    /// Convenience constructor for a named configuration applied to one
    /// loop.
    pub fn for_loop(transform: Transform, func: &str, loop_id: usize) -> Self {
        PipelineOptions {
            transform,
            filter: LoopFilter::Only {
                func: func.to_string(),
                loop_id,
            },
            ..Default::default()
        }
    }
}

/// Wall-clock attribution per pass (the paper's Figure 6c measures compile
/// time; §IV notes most of it is spent in the constant-propagation pass
/// processing duplicated code, not in u&u itself).
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// Pass name.
    pub name: &'static str,
    /// Accumulated wall time.
    pub elapsed: Duration,
    /// Accumulated deterministic compile-clock work (see [`WORK_PER_MS`]):
    /// this pass's share of [`CompileOutcome::work`].
    pub work: u64,
}

/// Deterministic compile-clock calibration: modeled work units per
/// millisecond. Every pass invocation charges the size of the function it
/// just processed, so modeled compile time grows with duplicated code the
/// same way the paper's Figure 6c wall clock does — but it is a pure
/// function of the input module and options, which is what lets sweep
/// reports be byte-identical across runs and worker counts.
///
/// Calibrated against release-build wall clock on the bundled benchmarks
/// (≈100 units/ms at the time of freezing), so modeled compile times —
/// and the Figure 6c ratios on top of the harness's frontend stand-in —
/// stay on the familiar milliseconds scale.
///
/// **Frozen.** The constant feeds [`pipeline_fingerprint`] and every
/// committed report, so it must NOT track later optimizer speedups (the
/// dense side-tables and cached analyses roughly halved real wall time
/// per work unit). The measured calibration lives in `BENCH_compile.json`
/// as `units_per_ms`, re-measured by `cargo bench -p uu-bench --bench
/// compile`; the report clock stays fixed so the corpus stays comparable.
pub const WORK_PER_MS: f64 = 100.0;

/// Every pass the pipeline can invoke, with a per-pass version counter.
/// **Bump a pass's version whenever its behaviour changes**: the list is
/// the input to [`pipeline_fingerprint`], which keys the `uu-serve`
/// content-addressed artifact cache — a stale fingerprint would let a
/// behaviourally different compiler serve old artifacts.
pub const PASS_VERSIONS: &[(&str, u32)] = &[
    ("simplifycfg", 1),
    ("instsimplify", 1),
    ("sccp", 1),
    ("gvn", 1),
    ("condprop", 1),
    ("dce", 1),
    ("ifconvert", 1),
    ("baseline-unroll", 1),
    ("unroll", 1),
    ("unmerge", 1),
    ("uu", 1),
    ("uu-heuristic", 1),
    ("meld", 1),
];

/// Version of the pipeline *structure* (pass order, guarding, degradation
/// ladder, compile clock). Bump on any pipeline.rs change that can alter a
/// compile's output or modeled work without touching an individual pass.
pub const PIPELINE_SCHEMA_VERSION: u32 = 1;

/// Deterministic fingerprint of the whole pass pipeline: the cache-key
/// component that invalidates every cached artifact when any pass (or the
/// pipeline itself) changes. Stable across processes and machines
/// (FNV-1a, not `DefaultHasher`).
pub fn pipeline_fingerprint() -> u64 {
    fingerprint_of(PIPELINE_SCHEMA_VERSION, PASS_VERSIONS)
}

/// [`pipeline_fingerprint`] over an explicit pass list — split out so
/// tests can prove that adding, removing, renaming or re-versioning any
/// pass changes the fingerprint.
pub fn fingerprint_of(schema: u32, passes: &[(&str, u32)]) -> u64 {
    let mut h = uu_ir::fnv1a(b"uu-pipeline");
    h = uu_ir::fnv1a_continue(h, &schema.to_le_bytes());
    h = uu_ir::fnv1a_continue(h, &WORK_PER_MS.to_bits().to_le_bytes());
    for (name, version) in passes {
        h = uu_ir::fnv1a_continue(h, name.as_bytes());
        h = uu_ir::fnv1a_continue(h, &[0]); // separator: ("ab",1) != ("a",b1)
        h = uu_ir::fnv1a_continue(h, &version.to_le_bytes());
    }
    h
}

/// Result of compiling a module.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// Per-pass timings, aggregated over rounds and functions.
    pub timings: Vec<PassTiming>,
    /// Total wall time. Diagnostics only — derive metrics from [`work`]
    /// instead, which is deterministic.
    ///
    /// [`work`]: CompileOutcome::work
    pub total: Duration,
    /// Modeled compile work in deterministic units (see [`WORK_PER_MS`]):
    /// the sum over pass invocations of the processed function's size.
    pub work: u64,
    /// Whether the timeout fired (compilation stopped early but the IR is
    /// valid).
    pub timed_out: bool,
    /// Heuristic decisions (only for [`Transform::UuHeuristic`]).
    pub decisions: Vec<(String, LoopDecision)>,
    /// Contained pass failures, in invocation order (empty on a clean
    /// compile).
    pub failures: Vec<PassFailure>,
    /// Which rung of the degradation ladder the compile landed on.
    pub rung: Rung,
    /// The executed pass invocations (the opt-bisect log). Skipped
    /// invocations — past [`PipelineOptions::bisect_limit`] — are absent;
    /// entries carry their stable index.
    pub pass_log: Vec<PassInvocation>,
    /// The final whole-module verification result, surfaced instead of
    /// panicked: `None` means the emitted module verifies. With guarding
    /// on this is always `None` — an unverifiable module degrades to
    /// [`Rung::Unoptimized`], restoring the input — but the diagnostic
    /// that forced the restore is kept in [`failures`].
    ///
    /// [`failures`]: CompileOutcome::failures
    pub verify_error: Option<String>,
}

impl CompileOutcome {
    /// Time attributed to `name`.
    pub fn time_of(&self, name: &str) -> Duration {
        self.timings
            .iter()
            .filter(|t| t.name == name)
            .map(|t| t.elapsed)
            .sum()
    }

    /// One-line summary of all contained failures (empty when clean) —
    /// the diagnostic string sweep reports carry per data point.
    pub fn failure_summary(&self) -> String {
        self.failures
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// Pass names that belong to the transform under measurement (not the
/// baseline pipeline): a contained failure in one of these means the
/// config effectively ran without u&u.
fn is_transform_pass(name: &str) -> bool {
    matches!(name, "unroll" | "unmerge" | "uu" | "uu-heuristic" | "meld")
}

struct Ctx {
    timings: Vec<PassTiming>,
    start: Instant,
    work: u64,
    work_budget: Option<u64>,
    timed_out: bool,
    // Recovery state.
    guard: bool,
    fault: Option<FaultPlan>,
    bisect_limit: Option<u64>,
    counter: u64,
    pass_log: Vec<PassInvocation>,
    failures: Vec<PassFailure>,
}

impl Ctx {
    fn new(opts: &PipelineOptions) -> Self {
        Ctx {
            timings: Vec::new(),
            start: Instant::now(),
            work: 0,
            work_budget: opts
                .timeout
                .map(|t| (t.as_secs_f64() * 1e3 * WORK_PER_MS) as u64),
            timed_out: false,
            guard: opts.guard,
            fault: opts.fault,
            bisect_limit: opts.bisect_limit,
            counter: 0,
            pass_log: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Record one pass invocation: wall time for the diagnostic breakdown,
    /// plus `work` deterministic units (the processed function's size)
    /// driving the modeled clock and the timeout.
    fn record(&mut self, name: &'static str, elapsed: Duration, work: u64) {
        match self.timings.iter_mut().find(|t| t.name == name) {
            Some(t) => {
                t.elapsed += elapsed;
                t.work += work;
            }
            None => self.timings.push(PassTiming { name, elapsed, work }),
        }
        self.work += work;
        if let Some(b) = self.work_budget {
            if self.work > b {
                self.timed_out = true;
            }
        }
    }

    /// Run one guarded pass invocation of `name` over `f`. Returns whether
    /// the pass reported a change that survived verification; a contained
    /// failure rolls `f` back and returns `false`.
    fn invoke(
        &mut self,
        f: &mut uu_ir::Function,
        name: &'static str,
        body: &mut dyn FnMut(&mut uu_ir::Function) -> bool,
    ) -> bool {
        let index = self.counter;
        self.counter += 1;
        if let Some(limit) = self.bisect_limit {
            if index >= limit {
                return false; // opt-bisect: pass skipped, no work charged
            }
        }
        self.pass_log.push(PassInvocation {
            index,
            pass: name,
            function: f.name().to_string(),
        });
        let fault = self.fault.filter(|p| p.at == index);
        let t0 = Instant::now();

        if !self.guard {
            let changed = body(f);
            self.record(name, t0.elapsed(), uu_analysis::cost::function_size(f));
            return changed;
        }

        // Arm the in-place undo journal instead of cloning the whole
        // function: first writes record pre-images, and rollback restores
        // them exactly (see `Function::snapshot_begin`). The journal's
        // buffers are retained across invocations, so the guarded happy
        // path allocates nothing in steady state.
        f.snapshot_begin();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if matches!(fault, Some(p) if p.kind == FaultKind::Panic) {
                panic!("injected fault: {}", fault.unwrap().spec());
            }
            body(f)
        }));
        let mut changed = match outcome {
            Ok(c) => c,
            Err(payload) => {
                f.snapshot_rollback();
                self.record(name, t0.elapsed(), uu_analysis::cost::function_size(f));
                self.failures.push(PassFailure {
                    pass: name,
                    index,
                    function: f.name().to_string(),
                    reason: FailureReason::Panic(panic_message(payload)),
                    rolled_back: true,
                });
                return false;
            }
        };
        // Post-pass fault effects.
        let mut must_verify = false;
        if let Some(p) = fault {
            match p.kind {
                FaultKind::Corrupt => {
                    changed |= corrupt_function(f, p.seed);
                    must_verify = true;
                }
                FaultKind::Miscompile => {
                    changed |= miscompile_function(f, p.seed);
                }
                FaultKind::Exhaust => {
                    self.timed_out = true;
                    self.failures.push(PassFailure {
                        pass: name,
                        index,
                        function: f.name().to_string(),
                        reason: FailureReason::Budget(format!(
                            "injected work-budget exhaustion: {}",
                            p.spec()
                        )),
                        rolled_back: false,
                    });
                }
                FaultKind::Panic | FaultKind::Mem => {}
            }
        }
        // Post-pass verification, on change only: an untouched function was
        // verified when it was produced, and skipping it keeps the guarded
        // happy path close to the unguarded one.
        if changed || must_verify {
            if let Err(e) = uu_ir::verify_function(f) {
                f.snapshot_rollback();
                self.record(name, t0.elapsed(), uu_analysis::cost::function_size(f));
                self.failures.push(PassFailure {
                    pass: name,
                    index,
                    function: f.name().to_string(),
                    reason: FailureReason::Verifier(e.to_string()),
                    rolled_back: true,
                });
                return false;
            }
        }
        f.snapshot_commit();
        self.record(name, t0.elapsed(), uu_analysis::cost::function_size(f));
        changed
    }
}

/// Compile (optimize) a module under the given configuration.
///
/// Never panics on pass misbehaviour when [`PipelineOptions::guard`] is
/// set (the default): failures are contained, rolled back, and reported
/// through [`CompileOutcome::failures`] / [`CompileOutcome::rung`], with
/// the whole-module verdict in [`CompileOutcome::verify_error`].
pub fn compile(m: &mut Module, opts: &PipelineOptions) -> CompileOutcome {
    let mut ctx = Ctx::new(opts);
    let mut decisions = Vec::new();
    let snapshot = if opts.guard { Some(m.clone()) } else { None };

    if opts.position == PassPosition::Early {
        apply_transform(m, opts, &mut ctx, &mut decisions);
    }
    optimize_module(m, opts, &mut ctx);
    if opts.position == PassPosition::Late && !ctx.timed_out {
        apply_transform(m, opts, &mut ctx, &mut decisions);
        // A single cleanup round after — the point of the ablation is that
        // the pipeline does not restart.
        let funcs: Vec<_> = m.iter().map(|(id, _)| id).collect();
        for id in funcs {
            run_timed_cleanup(m.function_mut(id), 1, &mut ctx, &mut AnalysisCache::new());
        }
    }

    // The degradation ladder's verdict: which rung did this compile land
    // on, and does the emitted module verify?
    let mut rung = if ctx.failures.iter().all(|f| matches!(f.reason, FailureReason::Budget(_))) {
        Rung::Full
    } else if ctx.failures.iter().any(|f| is_transform_pass(f.pass)) {
        Rung::NoTransform
    } else {
        Rung::DroppedPass
    };
    let mut verify_error = uu_ir::verify_module(m).err().map(|e| e.to_string());
    if let (Some(err), Some(snap)) = (&verify_error, snapshot) {
        // Last rung: the recovered module still does not verify (a pass
        // corrupted a function while reporting no change, slipping past
        // the on-change check). Restore the caller's input verbatim.
        ctx.failures.push(PassFailure {
            pass: "module-verify",
            index: ctx.counter,
            function: "<module>".to_string(),
            reason: FailureReason::Verifier(err.clone()),
            rolled_back: true,
        });
        *m = snap;
        rung = Rung::Unoptimized;
        verify_error = uu_ir::verify_module(m).err().map(|e| e.to_string());
    }

    CompileOutcome {
        total: ctx.start.elapsed(),
        work: ctx.work,
        timed_out: ctx.timed_out,
        timings: ctx.timings,
        decisions,
        failures: ctx.failures,
        rung,
        pass_log: ctx.pass_log,
        verify_error,
    }
}

fn apply_transform(
    m: &mut Module,
    opts: &PipelineOptions,
    ctx: &mut Ctx,
    decisions: &mut Vec<(String, LoopDecision)>,
) {
    let funcs: Vec<_> = m.iter().map(|(id, _)| id).collect();
    for id in funcs {
        if ctx.timed_out {
            return;
        }
        let fname = m.function(id).name().to_string();
        let f = m.function_mut(id);
        // Determine target loop headers under the filter.
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        let headers: Vec<uu_ir::BlockId> = match &opts.filter {
            LoopFilter::All => forest.loops().iter().map(|l| l.header).collect(),
            LoopFilter::Only { func, loop_id } => {
                if *func != fname || *loop_id >= forest.len() {
                    continue;
                }
                vec![forest.loops()[*loop_id].header]
            }
        };
        match &opts.transform {
            Transform::Baseline => {}
            Transform::Unroll { factor } => {
                let factor = *factor;
                ctx.invoke(f, "unroll", &mut |f| {
                    let mut changed = false;
                    for &h in &headers {
                        let dom = DomTree::compute(f);
                        let forest = LoopForest::compute(f, &dom);
                        if let Some(l) = forest.loops().iter().find(|l| l.header == h).cloned() {
                            if uu_analysis::convergence::loop_has_convergent(
                                f,
                                &forest,
                                uu_analysis::LoopId(
                                    forest.loops().iter().position(|x| x.header == h).unwrap(),
                                ),
                            ) {
                                continue;
                            }
                            if unroll_loop(f, l.header, &l.blocks, &l.latches, factor).is_some() {
                                // The stock unroller owns this loop now.
                                f.set_loop_pragma(h, uu_ir::LoopPragma::NoUnroll);
                                changed = true;
                            }
                        }
                    }
                    changed
                });
            }
            Transform::Unmerge => {
                ctx.invoke(f, "unmerge", &mut |f| {
                    let mut changed = false;
                    for &h in &headers {
                        changed |= uu_loop(
                            f,
                            h,
                            &UuOptions {
                                factor: 1,
                                ..Default::default()
                            },
                        )
                        .applied;
                    }
                    changed
                });
            }
            Transform::Uu { factor, unmerge } => {
                let (factor, unmerge) = (*factor, *unmerge);
                ctx.invoke(f, "uu", &mut |f| {
                    let mut changed = false;
                    for &h in &headers {
                        changed |= uu_loop(
                            f,
                            h,
                            &UuOptions {
                                factor,
                                unmerge,
                                ..Default::default()
                            },
                        )
                        .applied;
                    }
                    changed
                });
            }
            Transform::UuHeuristic(hopts) => {
                let mut local = Vec::new();
                ctx.invoke(f, "uu-heuristic", &mut |f| {
                    local = run_heuristic(f, hopts);
                    !local.is_empty()
                });
                for d in std::mem::take(&mut local) {
                    decisions.push((fname.clone(), d));
                }
            }
            Transform::Meld => {
                ctx.invoke(f, "meld", &mut |f| {
                    let mut changed = false;
                    for &h in &headers {
                        changed |= crate::opt::meld::meld_loop(f, h);
                    }
                    changed
                });
            }
            Transform::UuMeld { factor, unmerge } => {
                // Two guarded invocations so each step degrades
                // independently: a panicking meld rolls back to the u&u
                // result, not all the way to baseline. The loop header
                // block survives `uu_loop` (the unrolled loop keeps it),
                // so the meld step can target the same headers.
                let (factor, unmerge) = (*factor, *unmerge);
                ctx.invoke(f, "uu", &mut |f| {
                    let mut changed = false;
                    for &h in &headers {
                        changed |= uu_loop(
                            f,
                            h,
                            &UuOptions {
                                factor,
                                unmerge,
                                ..Default::default()
                            },
                        )
                        .applied;
                    }
                    changed
                });
                ctx.invoke(f, "meld", &mut |f| {
                    let mut changed = false;
                    for &h in &headers {
                        changed |= crate::opt::meld::meld_loop(f, h);
                    }
                    changed
                });
            }
        }
    }
}

fn optimize_module(m: &mut Module, opts: &PipelineOptions, ctx: &mut Ctx) {
    let funcs: Vec<_> = m.iter().map(|(id, _)| id).collect();
    for id in funcs {
        if ctx.timed_out {
            return;
        }
        let f = m.function_mut(id);
        // Dominators and loops survive across the cleanup fixpoint as long
        // as only CFG-preserving passes report changes; the clobbering
        // passes below invalidate explicitly.
        let mut cache = AnalysisCache::new();
        run_timed_cleanup(f, opts.max_rounds, ctx, &mut cache);
        if ctx.timed_out {
            return;
        }
        let bopts = opts.baseline_unroll;
        if ctx.invoke(f, "baseline-unroll", &mut |f| {
            let stats = baseline_unroll(f, &bopts);
            stats.full + stats.runtime + stats.pragma > 0
        }) {
            cache.invalidate();
        }
        run_timed_cleanup(f, opts.max_rounds, ctx, &mut cache);
        if ctx.timed_out {
            return;
        }
        if ctx.invoke(f, "ifconvert", &mut |f| IfConvert.run(f)) {
            cache.invalidate();
        }
        run_timed_cleanup(f, opts.max_rounds, ctx, &mut cache);
    }
}

fn run_timed_cleanup(
    f: &mut uu_ir::Function,
    max_rounds: usize,
    ctx: &mut Ctx,
    cache: &mut AnalysisCache,
) {
    for _ in 0..max_rounds {
        if ctx.timed_out {
            return;
        }
        let mut changed = false;
        macro_rules! guarded {
            ($pass:expr) => {{
                let mut p = $pass;
                let name = p.name();
                let changed_now = ctx.invoke(f, name, &mut |f| p.run_with(f, cache));
                // Rolled-back invocations return false and leave the CFG
                // exactly as the cache last saw it, so no invalidation is
                // needed on the failure paths.
                if changed_now && !p.preserves_cfg() {
                    cache.invalidate();
                }
                changed |= changed_now;
            }};
        }
        guarded!(SimplifyCfg::default());
        guarded!(InstSimplify);
        guarded!(Sccp);
        guarded!(SimplifyCfg::default());
        guarded!(Gvn);
        guarded!(CondProp);
        guarded!(Dce);
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type, Value};

    fn branchy_module() -> Module {
        let mut f = uu_ir::Function::new(
            "k",
            vec![Param::new("n", Type::I64), Param::new("c", Type::I1)],
            Type::I64,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let t = b.create_block();
        let e2 = b.create_block();
        let m = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, t, exit);
        b.switch_to(t);
        b.cond_br(Value::Arg(1), e2, m);
        b.switch_to(e2);
        b.br(m);
        b.switch_to(m);
        let p = b.phi(Type::I64);
        b.add_phi_incoming(p, t, Value::imm(1i64));
        b.add_phi_incoming(p, e2, Value::imm(2i64));
        let i1 = b.add(i, p);
        b.add_phi_incoming(i, m, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut m_ = Module::new("t");
        m_.add_function(f);
        m_
    }

    #[test]
    fn all_configs_produce_valid_ir() {
        for transform in [
            Transform::Baseline,
            Transform::Unroll { factor: 2 },
            Transform::Unmerge,
            Transform::Uu {
                factor: 2,
                unmerge: UnmergeOptions::default(),
            },
            Transform::UuHeuristic(HeuristicOptions::default()),
            Transform::Meld,
            Transform::UuMeld {
                factor: 2,
                unmerge: UnmergeOptions::default(),
            },
        ] {
            let mut m = branchy_module();
            let opts = PipelineOptions {
                transform,
                ..Default::default()
            };
            let out = compile(&mut m, &opts);
            assert!(!out.timed_out);
            // The verifier verdict is carried in the outcome, not panicked
            // from inside the pipeline.
            assert_eq!(
                out.verify_error, None,
                "config {:?} produced invalid IR",
                opts.transform
            );
            assert_eq!(out.rung, crate::recover::Rung::Full, "{:?}", opts.transform);
            assert!(out.failures.is_empty(), "{:?}: {}", opts.transform, out.failure_summary());
        }
    }

    #[test]
    fn baseline_ifconverts_the_diamond() {
        let mut m = branchy_module();
        compile(&mut m, &PipelineOptions::default());
        let f = m.function(uu_ir::FuncId::from_index(0));
        let selects = f
            .iter_insts()
            .filter(|(_, i)| matches!(i.kind, uu_ir::InstKind::Select { .. }))
            .count();
        assert!(selects >= 1, "baseline should predicate:\n{f}");
    }

    #[test]
    fn uu_leaves_no_selects_in_unmerged_body() {
        let mut m = branchy_module();
        compile(
            &mut m,
            &PipelineOptions {
                transform: Transform::Uu {
                    factor: 2,
                    unmerge: UnmergeOptions::default(),
                },
                ..Default::default()
            },
        );
        let f = m.function(uu_ir::FuncId::from_index(0));
        let selects = f
            .iter_insts()
            .filter(|(_, i)| matches!(i.kind, uu_ir::InstKind::Select { .. }))
            .count();
        assert_eq!(selects, 0, "u&u replaces predication with branches:\n{f}");
    }

    #[test]
    fn loop_filter_restricts_to_named_loop() {
        let mut m = branchy_module();
        let before = m.total_insts();
        compile(
            &mut m,
            &PipelineOptions::for_loop(
                Transform::Uu {
                    factor: 4,
                    unmerge: UnmergeOptions::default(),
                },
                "nonexistent",
                0,
            ),
        );
        // Transform targeted a nonexistent function: only baseline cleanup
        // ran. The loop body survives (baseline may still simplify a bit).
        let after = m.total_insts();
        assert!(after <= before);
    }

    /// The paper's argument for placing u&u early: a late placement leaves
    /// the subsequent optimizations no room to exploit the duplication, so
    /// the late-compiled kernel retains (at best) baseline-level cleanup.
    #[test]
    fn late_position_is_less_effective() {
        let run = |pos| {
            let mut m = branchy_module();
            let out = compile(
                &mut m,
                &PipelineOptions {
                    transform: Transform::Uu {
                        factor: 2,
                        unmerge: UnmergeOptions::default(),
                    },
                    position: pos,
                    ..Default::default()
                },
            );
            assert_eq!(out.verify_error, None, "position {pos:?}");
            let f = m.function(uu_ir::FuncId::from_index(0));
            f.iter_insts()
                .filter(|(_, i)| matches!(i.kind, uu_ir::InstKind::Select { .. }))
                .count()
        };
        let early = run(PassPosition::Early);
        let late = run(PassPosition::Late);
        // Early u&u pre-empts predication and specializes the paths (no
        // selects); placed late, the body was already if-converted, so the
        // duplication finds nothing to unmerge and the selects survive —
        // the pass is ineffective.
        assert_eq!(early, 0, "early u&u must remove all predication");
        assert!(late > 0, "late u&u leaves the baseline's selects in place");
    }

    #[test]
    fn timings_are_recorded() {
        let mut m = branchy_module();
        let out = compile(&mut m, &PipelineOptions::default());
        assert!(out.timings.iter().any(|t| t.name == "sccp"));
        assert!(out.timings.iter().any(|t| t.name == "gvn"));
        assert!(out.total >= out.time_of("sccp"));
    }

    #[test]
    fn compile_work_is_deterministic() {
        // The modeled compile clock must be a pure function of the input;
        // wall clock is diagnostics only.
        let run = |transform: Transform| {
            let mut m = branchy_module();
            let out = compile(
                &mut m,
                &PipelineOptions {
                    transform,
                    ..Default::default()
                },
            );
            (out.work, out.timed_out)
        };
        for transform in [
            Transform::Baseline,
            Transform::Uu {
                factor: 4,
                unmerge: UnmergeOptions::default(),
            },
        ] {
            let a = run(transform.clone());
            let b = run(transform);
            assert_eq!(a, b);
            assert!(a.0 > 0, "compiling must cost work");
        }
    }

    #[test]
    fn guarding_does_not_change_the_compile_clock() {
        // The checked-in results were produced on the modeled clock; the
        // guards must not perturb it on the happy path.
        let run = |guard: bool| {
            let mut m = branchy_module();
            compile(
                &mut m,
                &PipelineOptions {
                    transform: Transform::Uu {
                        factor: 4,
                        unmerge: UnmergeOptions::default(),
                    },
                    guard,
                    ..Default::default()
                },
            )
            .work
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn work_budget_timeout_fires_deterministically() {
        // A one-work-unit budget trips on the first pass, every time,
        // independent of machine speed — and leaves valid IR behind.
        let run = || {
            let mut m = branchy_module();
            let out = compile(
                &mut m,
                &PipelineOptions {
                    timeout: Some(Duration::from_nanos(1)),
                    ..Default::default()
                },
            );
            assert_eq!(out.verify_error, None);
            (out.timed_out, out.work)
        };
        let a = run();
        let b = run();
        assert!(a.0, "tiny budget must time out");
        assert_eq!(a, b);
    }

    #[test]
    fn injected_panic_is_contained_and_rolled_back() {
        use crate::recover::{FaultKind, FaultPlan};
        // Panic the very first pass invocation (the uu transform): the
        // compile must finish on the no-transform rung with valid IR
        // identical in spirit to a baseline compile.
        let mut m = branchy_module();
        let out = compile(
            &mut m,
            &PipelineOptions {
                transform: Transform::Uu {
                    factor: 2,
                    unmerge: UnmergeOptions::default(),
                },
                fault: Some(FaultPlan { kind: FaultKind::Panic, at: 0, seed: 0 }),
                ..Default::default()
            },
        );
        assert_eq!(out.verify_error, None);
        assert_eq!(out.rung, crate::recover::Rung::NoTransform);
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].pass, "uu");
        assert!(matches!(out.failures[0].reason, FailureReason::Panic(_)));
        assert!(out.failures[0].rolled_back);
        // The u&u never survived, so the baseline's predication remains.
        let f = m.function(uu_ir::FuncId::from_index(0));
        let selects = f
            .iter_insts()
            .filter(|(_, i)| matches!(i.kind, uu_ir::InstKind::Select { .. }))
            .count();
        assert!(selects >= 1, "rolled-back u&u must leave the baseline result");
    }

    /// `branchy_module` with the diamond condition derived from
    /// `threadIdx.x`, so the meld pass has a divergent diamond to chew on.
    fn divergent_branchy_module() -> Module {
        let mut f = uu_ir::Function::new("k", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let t = b.create_block();
        let a1 = b.create_block();
        let a2 = b.create_block();
        let m = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        let tid = b.thread_idx();
        let tid64 = b.cast(uu_ir::CastOp::Sext, tid, Type::I64);
        let bit = b.and(tid64, Value::imm(1i64));
        let odd = b.icmp(ICmpPred::Ne, bit, Value::imm(0i64));
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, t, exit);
        b.switch_to(t);
        b.cond_br(odd, a1, a2);
        b.switch_to(a1);
        let x2 = b.mul(i, Value::imm(2i64));
        b.br(m);
        b.switch_to(a2);
        let x3 = b.mul(i, Value::imm(3i64));
        b.br(m);
        b.switch_to(m);
        let p = b.phi(Type::I64);
        b.add_phi_incoming(p, a1, x2);
        b.add_phi_incoming(p, a2, x3);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, m, i1);
        let _ = p;
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut m_ = Module::new("t");
        m_.add_function(f);
        m_
    }

    #[test]
    fn meld_config_compiles_the_divergent_diamond_cleanly() {
        let mut m = divergent_branchy_module();
        let out = compile(
            &mut m,
            &PipelineOptions {
                transform: Transform::Meld,
                ..Default::default()
            },
        );
        assert_eq!(out.verify_error, None);
        assert_eq!(out.rung, crate::recover::Rung::Full, "{}", out.failure_summary());
        assert!(out.pass_log.iter().any(|p| p.pass == "meld"));
    }

    #[test]
    fn injected_meld_panic_degrades_to_no_transform() {
        use crate::recover::{FaultKind, FaultPlan};
        // Under uu+meld, invocation 0 is the uu step and invocation 1 the
        // meld step. Panicking the meld must roll back to the u&u result
        // and land the compile on the no-transform rung ("the measured
        // transform did not fully run"), with valid IR.
        let mut m = divergent_branchy_module();
        let out = compile(
            &mut m,
            &PipelineOptions {
                transform: Transform::UuMeld {
                    factor: 2,
                    unmerge: UnmergeOptions::default(),
                },
                fault: Some(FaultPlan { kind: FaultKind::Panic, at: 1, seed: 0 }),
                ..Default::default()
            },
        );
        assert_eq!(out.verify_error, None);
        assert_eq!(out.rung, crate::recover::Rung::NoTransform);
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].pass, "meld");
        assert!(out.failures[0].rolled_back);
    }

    #[test]
    fn injected_corruption_is_caught_by_the_verifier_and_rolled_back() {
        use crate::recover::{FaultKind, FaultPlan};
        for at in [0u64, 2, 5] {
            let mut m = branchy_module();
            let out = compile(
                &mut m,
                &PipelineOptions {
                    transform: Transform::Uu {
                        factor: 2,
                        unmerge: UnmergeOptions::default(),
                    },
                    fault: Some(FaultPlan { kind: FaultKind::Corrupt, at, seed: at }),
                    ..Default::default()
                },
            );
            assert_eq!(out.verify_error, None, "at {at}");
            assert_eq!(out.failures.len(), 1, "at {at}");
            assert!(
                matches!(out.failures[0].reason, FailureReason::Verifier(_)),
                "at {at}: {}",
                out.failure_summary()
            );
        }
    }

    #[test]
    fn injected_exhaustion_times_out_without_failing_the_compile() {
        use crate::recover::{FaultKind, FaultPlan};
        let mut m = branchy_module();
        let out = compile(
            &mut m,
            &PipelineOptions {
                fault: Some(FaultPlan { kind: FaultKind::Exhaust, at: 1, seed: 0 }),
                ..Default::default()
            },
        );
        assert!(out.timed_out, "injected exhaustion must trip the budget");
        assert_eq!(out.verify_error, None, "exhaustion leaves valid IR");
        assert_eq!(out.rung, crate::recover::Rung::Full);
        assert!(out
            .failures
            .iter()
            .any(|f| matches!(f.reason, FailureReason::Budget(_))));
    }

    #[test]
    fn bisect_limit_prefixes_are_stable() {
        // Invocation i must behave identically under every limit > i: the
        // pass log under limit k is exactly the first k entries of the
        // full log.
        let full = {
            let mut m = branchy_module();
            compile(
                &mut m,
                &PipelineOptions {
                    transform: Transform::Uu {
                        factor: 2,
                        unmerge: UnmergeOptions::default(),
                    },
                    ..Default::default()
                },
            )
            .pass_log
        };
        assert!(full.len() > 4, "expected a multi-pass pipeline");
        for k in [0usize, 1, 3, full.len() - 1] {
            let mut m = branchy_module();
            let out = compile(
                &mut m,
                &PipelineOptions {
                    transform: Transform::Uu {
                        factor: 2,
                        unmerge: UnmergeOptions::default(),
                    },
                    bisect_limit: Some(k as u64),
                    ..Default::default()
                },
            );
            assert_eq!(out.verify_error, None, "limit {k}");
            assert_eq!(&out.pass_log[..], &full[..k], "limit {k}");
        }
    }

    #[test]
    fn zero_bisect_limit_is_the_identity_compile() {
        let mut m = branchy_module();
        let before = format!("{}", m.function(uu_ir::FuncId::from_index(0)));
        let out = compile(
            &mut m,
            &PipelineOptions {
                bisect_limit: Some(0),
                ..Default::default()
            },
        );
        assert_eq!(out.work, 0);
        assert!(out.pass_log.is_empty());
        let after = format!("{}", m.function(uu_ir::FuncId::from_index(0)));
        assert_eq!(before, after, "limit 0 must not touch the module");
    }

    #[test]
    fn pipeline_fingerprint_is_stable_and_sensitive() {
        let base = pipeline_fingerprint();
        assert_eq!(base, fingerprint_of(PIPELINE_SCHEMA_VERSION, PASS_VERSIONS));

        // Bumping any pass version must invalidate the fingerprint.
        for i in 0..PASS_VERSIONS.len() {
            let mut v = PASS_VERSIONS.to_vec();
            v[i].1 += 1;
            assert_ne!(
                fingerprint_of(PIPELINE_SCHEMA_VERSION, &v),
                base,
                "version bump of {} must change the fingerprint",
                PASS_VERSIONS[i].0
            );
        }
        // So must removing, adding or renaming a pass, or a schema bump.
        assert_ne!(fingerprint_of(PIPELINE_SCHEMA_VERSION, &PASS_VERSIONS[1..]), base);
        let mut added = PASS_VERSIONS.to_vec();
        added.push(("newpass", 1));
        assert_ne!(fingerprint_of(PIPELINE_SCHEMA_VERSION, &added), base);
        let mut renamed = PASS_VERSIONS.to_vec();
        renamed[0].0 = "renamed";
        assert_ne!(fingerprint_of(PIPELINE_SCHEMA_VERSION, &renamed), base);
        assert_ne!(fingerprint_of(PIPELINE_SCHEMA_VERSION + 1, PASS_VERSIONS), base);
        // The name/version separator prevents adjacent-field aliasing.
        assert_ne!(
            fingerprint_of(1, &[("ab", 1), ("c", 1)]),
            fingerprint_of(1, &[("a", 1), ("bc", 1)])
        );
    }
}

//! Control-flow unmerging (paper §III-A1, §III-A3).
//!
//! Unmerging eliminates merge blocks inside a loop body by tail-duplicating
//! them per predecessor, so that each duplicated block "knows" which path
//! reached it. The paper's design decision is *aggressive whole-path*
//! duplication: once a merge block is duplicated, its successors become
//! merges with more predecessors and are duplicated in turn, all the way to
//! the latch — revealing as many obscured (partial) redundancies as possible.
//! The DBDS-style alternative (duplicate only the direct merge successor,
//! paper ref \[8\]) is provided as [`UnmergeMode::DirectSuccessor`] for the
//! ablation study.
//!
//! Inner loops are treated as *super-nodes*: they are never torn apart, but
//! are duplicated wholesale when they sit on a duplicated path.

use crate::clone::{add_phi_incomings_for_clone, clone_region, resolve_trivial_phis};
use uu_analysis::{DomTree, LoopForest};
use uu_ir::{BlockId, EntitySet, Function, InstKind, SecondaryMap};

/// How far unmerging cascades.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnmergeMode {
    /// The paper's aggressive mode: duplicate every merge down to the latch.
    #[default]
    WholePath,
    /// DBDS-style: duplicate each originally-merging block once; merges
    /// created downstream by the duplication itself are left alone.
    DirectSuccessor,
    /// *Partial unmerging* (the paper's §VI future work): duplicate only
    /// merges that carry phis — the provenance-bearing ones whose
    /// duplication can enable downstream optimization — and cascade from
    /// there; phi-free forwarding merges are left alone, containing code
    /// growth.
    Selective,
}

/// Tuning knobs for [`unmerge_loop`].
#[derive(Debug, Clone, Copy)]
pub struct UnmergeOptions {
    /// Cascade mode.
    pub mode: UnmergeMode,
    /// Hard cap on the function's block count; when the next duplication
    /// would exceed it, unmerging stops early (the IR stays valid, merely
    /// partially unmerged). Models the paper's compile-time timeouts: ccs
    /// at factor 4+ ran past the authors' 5-minute limit for the same
    /// exponential reason (paper §IV-C, RQ2).
    pub max_blocks: usize,
}

impl Default for UnmergeOptions {
    fn default() -> Self {
        UnmergeOptions {
            mode: UnmergeMode::WholePath,
            max_blocks: 2048,
        }
    }
}

/// Statistics from one unmerge run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnmergeStats {
    /// Number of merge (super-)nodes duplicated.
    pub nodes_duplicated: usize,
    /// Number of block clones created.
    pub blocks_cloned: usize,
    /// Whether the `max_blocks` cap stopped the cascade early.
    pub hit_limit: bool,
}

/// Unmerge the control flow inside the loop headed at `header`.
///
/// `blocks` is the loop's block set (from a fresh loop analysis; after
/// unrolling, pass the unrolled loop's full set). The header itself is never
/// duplicated. Returns statistics; a loop whose body has no merges is left
/// untouched (`nodes_duplicated == 0`), matching the paper's early return.
pub fn unmerge_loop(
    f: &mut Function,
    header: BlockId,
    blocks: &[BlockId],
    options: UnmergeOptions,
) -> UnmergeStats {
    let mut stats = UnmergeStats::default();
    let loop_set: EntitySet<BlockId> = blocks.iter().copied().collect();

    // Super-node assignment: blocks of inner loops collapse onto the header
    // of the outermost inner loop (within this loop).
    let dom = DomTree::compute(f);
    let forest = LoopForest::compute(f, &dom);
    let this_loop = forest
        .loops()
        .iter()
        .position(|l| l.header == header)
        .map(uu_analysis::LoopId);
    let mut group_of: SecondaryMap<BlockId, Option<BlockId>> = SecondaryMap::new();
    for &b in blocks {
        let mut rep = b;
        if let Some(this) = this_loop {
            // Walk up the loop-nest from the innermost loop containing b to
            // the direct child of `this_loop`.
            let mut cur = forest.innermost_containing(b);
            while let Some(lid) = cur {
                if lid == this {
                    break;
                }
                let l = forest.get(lid);
                if l.parent == Some(this) {
                    rep = l.header;
                    break;
                }
                cur = l.parent;
            }
        }
        group_of.set(b, Some(rep));
    }

    // Topological order of super-nodes along the body DAG (back edges to the
    // loop header ignored; internal edges of a group ignored).
    let topo = topo_supernodes(f, header, &loop_set, &group_of);

    // Original merge set for DirectSuccessor mode.
    let preds_now = f.predecessors();
    let original_merges: EntitySet<BlockId> = topo
        .iter()
        .copied()
        .filter(|&n| n != header && in_loop_preds(&preds_now, n, &group_of).len() >= 2)
        .collect();
    let mut original_pred_sets: SecondaryMap<BlockId, Option<Vec<BlockId>>> = SecondaryMap::new();
    for n in original_merges.iter() {
        original_pred_sets.set(n, Some(in_loop_preds(&preds_now, n, &group_of)));
    }

    for &node in &topo {
        if node == header {
            continue;
        }
        if options.mode == UnmergeMode::DirectSuccessor && !original_merges.contains(node) {
            continue;
        }
        if options.mode == UnmergeMode::Selective
            && original_merges.contains(node)
            && f.phis(node).is_empty()
        {
            // A merge with no phis carries no value provenance to recover.
            continue;
        }
        let preds = f.predecessors();
        let mut incoming: Vec<BlockId> = in_loop_preds(&preds, node, &group_of);
        if options.mode == UnmergeMode::DirectSuccessor {
            // Duplicate only into the *original* predecessors: merges grown
            // by upstream duplication are left as merges (DBDS semantics).
            let orig = original_pred_sets.get(node).as_ref().expect("node is an original merge");
            incoming.retain(|p| orig.contains(p));
        }
        if incoming.len() < 2 {
            continue;
        }
        // Blocks of this super-node.
        let group: Vec<BlockId> = blocks
            .iter()
            .copied()
            .filter(|&b| *group_of.get(b) == Some(node))
            .collect();
        stats.nodes_duplicated += 1;
        // Keep the first predecessor on the original; clone for the rest.
        let mut clone_entries: Vec<BlockId> = Vec::new();
        for &p in &incoming[1..] {
            if f.num_blocks() + group.len() > options.max_blocks {
                stats.hit_limit = true;
                return stats;
            }
            let map = clone_region(f, &group);
            stats.blocks_cloned += group.len();
            // Retarget p's edge(s) into the clone of the entry block.
            let t = f.terminator(p).expect("pred has a terminator");
            f.inst_mut(t).kind.replace_block(node, map.map_block(node));
            // Clone entry phis: keep the incoming from p plus any incomings
            // from inside the clone itself (an inner-loop header keeps the
            // incomings from its own cloned latches). Resolution of the
            // now-trivial phis is deferred until the whole node is done:
            // successor-phi patching and SSA repair read the clone values.
            let centry = map.map_block(node);
            clone_entries.push(centry);
            let clone_blocks: EntitySet<BlockId> = map.cloned_blocks().collect();
            for phi in f.phis(centry) {
                if let InstKind::Phi { incomings } = &mut f.inst_mut(phi).kind {
                    incomings.retain(|(b, _)| *b == p || clone_blocks.contains(*b));
                }
            }
            // Original entry loses the incoming from p.
            crate::clone::remove_phi_incomings_from(f, node, p);
            // Successor phis outside the group gain incomings from the
            // clone (loop header via back edges, exits, downstream blocks).
            for &g in &group {
                for s in f.successors(g) {
                    if group.contains(&s) {
                        continue;
                    }
                    add_phi_incomings_for_clone(f, s, g, &map);
                }
            }
            // Values defined in the group and used downstream (outside the
            // group and the clone, other than through successor phis) now
            // have two definitions; rewire those uses through fresh phis.
            repair_ssa_after_clone(f, &group, &map);
        }
        // Blocks left with a single predecessor: their phis become trivial.
        resolve_trivial_phis(f, node);
        for c in clone_entries {
            resolve_trivial_phis(f, c);
        }
    }
    stats
}

/// Predecessors of `node` that lie inside the loop but outside `node`'s own
/// super-node group.
///
/// For any non-header loop block, *every* predecessor is inside the loop (a
/// natural loop has a single entry through its header), so the only
/// exclusions are same-group blocks: an inner-loop header's own latches are
/// not "merging" predecessors. Blocks created by earlier duplications are
/// not in `group_of` and count as ordinary in-loop predecessors.
fn in_loop_preds(
    preds: &[Vec<BlockId>],
    node: BlockId,
    group_of: &SecondaryMap<BlockId, Option<BlockId>>,
) -> Vec<BlockId> {
    let mut out = Vec::new();
    for &p in &preds[node.index()] {
        if *group_of.get(p) == Some(node) {
            continue;
        }
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

/// After duplicating `group` into the clone described by `map`, every value
/// defined inside the group that is used outside both copies has two
/// definitions. Rewire those uses through phis placed at the merge points,
/// using a classic SSA-updater walk (memoized, cycle-safe).
///
/// Uses that are phi incomings *from inside* either copy were already fixed
/// by [`add_phi_incomings_for_clone`]; only uses whose site lies strictly
/// outside both copies are repaired here.
fn repair_ssa_after_clone(
    f: &mut Function,
    group: &[BlockId],
    map: &crate::clone::CloneMap,
) {
    use uu_ir::{Inst, Value};
    let clone_set: EntitySet<BlockId> = map.cloned_blocks().collect();
    let group_set: EntitySet<BlockId> = group.iter().copied().collect();
    let outside = |b: BlockId| !group_set.contains(b) && !clone_set.contains(b);

    for &g in group {
        for v in f.block(g).insts.clone() {
            let ty = f.inst(v).ty;
            if ty == uu_ir::Type::Void {
                continue;
            }
            // Collect outside uses: (user, site, Some(pred) for phi uses).
            let mut uses: Vec<(uu_ir::InstId, BlockId, Option<BlockId>)> = Vec::new();
            for &ub in f.layout() {
                if !outside(ub) {
                    continue;
                }
                for &u in &f.block(ub).insts {
                    match &f.inst(u).kind {
                        InstKind::Phi { incomings } => {
                            for (p, val) in incomings {
                                if *val == Value::Inst(v) && outside(*p) {
                                    uses.push((u, *p, Some(*p)));
                                }
                            }
                        }
                        k => {
                            let mut used = false;
                            k.for_each_operand(|x| {
                                if *x == Value::Inst(v) {
                                    used = true;
                                }
                            });
                            if used {
                                uses.push((u, ub, None));
                            }
                        }
                    }
                }
            }
            if uses.is_empty() {
                continue;
            }
            let mut defs: SecondaryMap<BlockId, Option<Value>> = SecondaryMap::new();
            defs.set(g, Some(Value::Inst(v)));
            defs.set(map.map_block(g), Some(map.map_value(Value::Inst(v))));
            let mut memo: SecondaryMap<BlockId, Option<Value>> = SecondaryMap::new();
            let preds = f.predecessors();

            // Value available at the end of `b` (SSA-updater walk).
            fn value_at_end(
                f: &mut Function,
                preds: &[Vec<BlockId>],
                defs: &SecondaryMap<BlockId, Option<Value>>,
                memo: &mut SecondaryMap<BlockId, Option<Value>>,
                ty: uu_ir::Type,
                b: BlockId,
            ) -> Value {
                if let Some(v) = *defs.get(b) {
                    return v;
                }
                if let Some(v) = *memo.get(b) {
                    return v;
                }
                let ps = &preds[b.index()];
                if ps.is_empty() {
                    // Entry reached: only possible for IR that was already
                    // invalid (use not dominated by def). Keep the original.
                    debug_assert!(false, "SSA repair walked past the entry");
                    return defs
                        .iter()
                        .find_map(|(_, v)| *v)
                        .expect("at least one def");
                }
                if ps.len() == 1 {
                    let v = value_at_end(f, preds, defs, memo, ty, ps[0]);
                    memo.set(b, Some(v));
                    return v;
                }
                // Merge point (or entry, which valid IR never reaches):
                // insert a phi, memoize it first to break cycles.
                let phi = f.prepend_inst(b, Inst::new(InstKind::Phi { incomings: vec![] }, ty));
                memo.set(b, Some(Value::Inst(phi)));
                let mut incomings = Vec::new();
                let mut seen = Vec::new();
                for &p in ps {
                    if seen.contains(&p) {
                        continue;
                    }
                    seen.push(p);
                    let pv = value_at_end(f, preds, defs, memo, ty, p);
                    incomings.push((p, pv));
                }
                if let InstKind::Phi { incomings: inc } = &mut f.inst_mut(phi).kind {
                    *inc = incomings;
                }
                Value::Inst(phi)
            }

            for (user, site, phi_pred) in uses {
                let repl = value_at_end(f, &preds, &defs, &mut memo, ty, site);
                if repl == Value::Inst(v) {
                    continue;
                }
                match phi_pred {
                    Some(pp) => {
                        if let InstKind::Phi { incomings } = &mut f.inst_mut(user).kind {
                            for (p, val) in incomings {
                                if *p == pp && *val == Value::Inst(v) {
                                    *val = repl;
                                }
                            }
                        }
                    }
                    None => {
                        let mut kind = f.inst(user).kind.clone();
                        kind.for_each_operand_mut(|x| {
                            if *x == Value::Inst(v) {
                                *x = repl;
                            }
                        });
                        f.inst_mut(user).kind = kind;
                    }
                }
            }
        }
    }
}

/// Topological order of super-node representatives over the body DAG.
fn topo_supernodes(
    f: &Function,
    header: BlockId,
    loop_set: &EntitySet<BlockId>,
    group_of: &SecondaryMap<BlockId, Option<BlockId>>,
) -> Vec<BlockId> {
    // DFS from the header's group over group-level edges, post-order
    // reversed. Back edges to the header are ignored (DAG). The dense set
    // iterates in block-index order, so the resulting topological order (and
    // hence duplication order) is deterministic.
    let mut visited: EntitySet<BlockId> = EntitySet::new();
    let mut post: Vec<BlockId> = Vec::new();
    fn dfs(
        f: &Function,
        node: BlockId,
        header: BlockId,
        loop_set: &EntitySet<BlockId>,
        group_of: &SecondaryMap<BlockId, Option<BlockId>>,
        visited: &mut EntitySet<BlockId>,
        post: &mut Vec<BlockId>,
    ) {
        if !visited.insert(node) {
            return;
        }
        // Successor groups: successors of any block in this group.
        let group: Vec<BlockId> = loop_set
            .iter()
            .filter(|&b| *group_of.get(b) == Some(node))
            .collect();
        for &g in &group {
            for s in f.successors(g) {
                if !loop_set.contains(s) || s == header {
                    continue;
                }
                let sg = group_of.get(s).expect("loop block has a group");
                if sg != node {
                    dfs(f, sg, header, loop_set, group_of, visited, post);
                }
            }
        }
        post.push(node);
    }
    dfs(f, header, header, loop_set, group_of, &mut visited, &mut post);
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_analysis::{DomTree as DT, LoopForest as LF, LoopId};
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type, Value};

    /// Loop with a straight-line body: nothing to unmerge.
    fn straight_loop() -> uu_ir::Function {
        let mut f = uu_ir::Function::new("sl", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let more = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(more, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        f
    }

    /// Loop body: header -> chooser -(c)-> {C | D} -> E(latch) -> header.
    fn diamond_loop() -> uu_ir::Function {
        let mut f = uu_ir::Function::new(
            "dl",
            vec![Param::new("n", Type::I64), Param::new("c", Type::I1)],
            Type::I64,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block(); // 1 header
        let cblk = b.create_block(); // 2
        let dblk = b.create_block(); // 3
        let eblk = b.create_block(); // 4 merge+latch
        let exit = b.create_block(); // 5
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let more = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        let chooser = b.create_block(); // 6
        b.cond_br(more, chooser, exit);
        b.switch_to(chooser);
        b.cond_br(Value::Arg(1), cblk, dblk);
        b.switch_to(cblk);
        let x1 = b.add(i, Value::imm(10i64));
        b.br(eblk);
        b.switch_to(dblk);
        let x2 = b.add(i, Value::imm(20i64));
        b.br(eblk);
        b.switch_to(eblk);
        let xm = b.phi(Type::I64);
        b.add_phi_incoming(xm, cblk, x1);
        b.add_phi_incoming(xm, dblk, x2);
        let i1 = b.add(i, xm);
        b.add_phi_incoming(i, eblk, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        f
    }

    #[test]
    fn unmerges_diamond_merge_block() {
        let mut f = diamond_loop();
        uu_ir::verify_function(&f).unwrap();
        let dom = DT::compute(&f);
        let forest = LF::compute(&f, &dom);
        let l = forest.get(LoopId(0)).clone();
        let before = f.num_blocks();
        let stats = unmerge_loop(&mut f, l.header, &l.blocks, UnmergeOptions::default());
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        assert_eq!(stats.nodes_duplicated, 1);
        assert_eq!(stats.blocks_cloned, 1);
        assert_eq!(f.num_blocks(), before + 1);
        // The merge block E now exists twice; both have a single pred, so no
        // phis remain in either (values resolved), and the header gained a
        // third predecessor (two latches + preheader... header has
        // preheader + 2 latch copies).
        let preds = f.predecessors();
        let h = l.header;
        assert_eq!(preds[h.index()].len(), 3);
        // Header phi must have 3 matching incomings.
        let phi = f.phis(h)[0];
        match &f.inst(phi).kind {
            InstKind::Phi { incomings } => assert_eq!(incomings.len(), 3),
            _ => unreachable!(),
        }
    }

    #[test]
    fn no_merges_means_no_change() {
        let mut f = straight_loop();
        let dom = DT::compute(&f);
        let forest = LF::compute(&f, &dom);
        let l = forest.get(LoopId(0)).clone();
        let before = f.num_blocks();
        let stats = unmerge_loop(&mut f, l.header, &l.blocks, UnmergeOptions::default());
        assert_eq!(stats.nodes_duplicated, 0);
        assert_eq!(f.num_blocks(), before);
    }

    /// Two sequential diamonds: WholePath must duplicate the second merge
    /// more times than DirectSuccessor.
    fn two_diamond_loop() -> uu_ir::Function {
        let mut f = uu_ir::Function::new(
            "dd",
            vec![
                Param::new("n", Type::I64),
                Param::new("c1", Type::I1),
                Param::new("c2", Type::I1),
            ],
            Type::I64,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block(); // 1
        let a1 = b.create_block(); // 2
        let b1 = b.create_block(); // 3
        let m1 = b.create_block(); // 4 first merge
        let a2 = b.create_block(); // 5
        let b2 = b.create_block(); // 6
        let m2 = b.create_block(); // 7 second merge + latch
        let exit = b.create_block(); // 8
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let more = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        let body = b.create_block(); // 9
        b.cond_br(more, body, exit);
        b.switch_to(body);
        b.cond_br(Value::Arg(1), a1, b1);
        b.switch_to(a1);
        let v1 = b.add(i, Value::imm(1i64));
        b.br(m1);
        b.switch_to(b1);
        let v2 = b.add(i, Value::imm(2i64));
        b.br(m1);
        b.switch_to(m1);
        let p1 = b.phi(Type::I64);
        b.add_phi_incoming(p1, a1, v1);
        b.add_phi_incoming(p1, b1, v2);
        b.cond_br(Value::Arg(2), a2, b2);
        b.switch_to(a2);
        let w1 = b.add(p1, Value::imm(3i64));
        b.br(m2);
        b.switch_to(b2);
        let w2 = b.add(p1, Value::imm(4i64));
        b.br(m2);
        b.switch_to(m2);
        let p2 = b.phi(Type::I64);
        b.add_phi_incoming(p2, a2, w1);
        b.add_phi_incoming(p2, b2, w2);
        b.add_phi_incoming(i, m2, p2);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        f
    }

    #[test]
    fn whole_path_cascades_further_than_direct_successor() {
        let mut f1 = two_diamond_loop();
        let mut f2 = two_diamond_loop();
        let run = |f: &mut uu_ir::Function, mode| {
            let dom = DT::compute(f);
            let forest = LF::compute(f, &dom);
            let l = forest.get(LoopId(0)).clone();
            unmerge_loop(
                f,
                l.header,
                &l.blocks,
                UnmergeOptions {
                    mode,
                    ..Default::default()
                },
            )
        };
        let s_whole = run(&mut f1, UnmergeMode::WholePath);
        uu_ir::verify_function(&f1).unwrap_or_else(|e| panic!("{e}\n{f1}"));
        let s_direct = run(&mut f2, UnmergeMode::DirectSuccessor);
        uu_ir::verify_function(&f2).unwrap_or_else(|e| panic!("{e}\n{f2}"));
        assert!(
            s_whole.blocks_cloned > s_direct.blocks_cloned,
            "whole {s_whole:?} vs direct {s_direct:?}"
        );
        // WholePath: m1 duplicated once (2 preds), a2/b2 duplicated (2 preds
        // each), m2 duplicated into 4 copies total (4 preds): no merges left
        // except the header.
        let dom = DT::compute(&f1);
        let forest = LF::compute(&f1, &dom);
        let l = &forest.loops()[0];
        let preds = f1.predecessors();
        for &b in &l.blocks {
            if b == l.header {
                continue;
            }
            assert!(
                preds[b.index()].len() <= 1,
                "block {b} still a merge after WholePath unmerge"
            );
        }
    }

    #[test]
    fn block_cap_stops_early_but_stays_valid() {
        let mut f = two_diamond_loop();
        let dom = DT::compute(&f);
        let forest = LF::compute(&f, &dom);
        let l = forest.get(LoopId(0)).clone();
        let cap = f.num_blocks() + 2;
        let stats = unmerge_loop(
            &mut f,
            l.header,
            &l.blocks,
            UnmergeOptions {
                mode: UnmergeMode::WholePath,
                max_blocks: cap,
            },
        );
        assert!(stats.hit_limit);
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
    }
}

//! Loop unrolling (paper §III-A2).
//!
//! The transform is "while-style": each of the `u` body copies keeps its own
//! exit check, so it is correct for *any* loop — counted or not — exactly
//! like the unrolling that u&u performs (the paper's loops are mostly
//! non-counted `while` loops). Unrolling proceeds as the paper describes:
//! (1) copy the loop blocks, (2) rewire the back edge of copy *k* to the
//! header of copy *k+1*, (3) rewire the last copy's back edge to the
//! original header.
//!
//! Full unrolling of counted loops (used by the baseline `-O3` pipeline) is
//! obtained by unrolling `trip_count + 1` times and letting SCCP prove the
//! remaining back edge dead; see `baseline_unroll`.

use crate::clone::{add_phi_incomings_for_clone, clone_region, resolve_trivial_phis, CloneMap};
use crate::loopsimplify::{canonicalize_loop, CanonicalLoop};
use std::collections::HashSet;
use uu_ir::{BlockId, Function, InstKind, Value};

/// Outcome of a successful unroll.
#[derive(Debug)]
pub struct UnrollResult {
    /// The canonicalized loop that was unrolled (original copy).
    pub canonical: CanonicalLoop,
    /// Clone maps for copies `1..factor` (copy 0 is the original).
    pub copies: Vec<CloneMap>,
    /// All blocks of the unrolled loop (original + copies).
    pub all_blocks: Vec<BlockId>,
    /// The latch of the last copy (carries the remaining back edge).
    pub final_latch: BlockId,
}

/// Unroll the loop with the given header by `factor` (≥ 2).
///
/// Returns `None` without mutating anything observable when:
/// * `factor < 2`,
/// * the loop cannot be canonicalized (see
///   [`canonicalize_loop`] for the bail conditions).
///
/// [`canonicalize_loop`]: crate::loopsimplify::canonicalize_loop
///
/// The caller provides the loop membership (`blocks`, `latches`) from a
/// fresh [`uu_analysis::LoopForest`].
pub fn unroll_loop(
    f: &mut Function,
    header: BlockId,
    blocks: &[BlockId],
    latches: &[BlockId],
    factor: u32,
) -> Option<UnrollResult> {
    if factor < 2 {
        return None;
    }
    let cl = canonicalize_loop(f, header, blocks, latches)?;
    Some(unroll_canonical(f, cl, factor))
}

/// Unroll an already-canonical loop. Infallible.
pub fn unroll_canonical(f: &mut Function, cl: CanonicalLoop, factor: u32) -> UnrollResult {
    let u = factor as usize;
    let latch = cl.latch;
    let header = cl.header;

    // Record the original header phis' latch incomings before mutation.
    let header_phis = f.phis(header);
    let latch_incoming: Vec<Value> = header_phis
        .iter()
        .map(|&p| match &f.inst(p).kind {
            InstKind::Phi { incomings } => incomings
                .iter()
                .find(|(b, _)| *b == latch)
                .map(|(_, v)| *v)
                .expect("canonical loop header phi has a latch incoming"),
            _ => unreachable!(),
        })
        .collect();

    // Clone copies 1..u.
    let mut copies: Vec<CloneMap> = Vec::with_capacity(u - 1);
    for _ in 1..u {
        copies.push(clone_region(f, &cl.blocks));
    }

    // In-loop predecessors of each exit (for phi patching).
    let loop_set: HashSet<BlockId> = cl.blocks.iter().copied().collect();
    let preds = f.predecessors();
    let exit_inside_preds: Vec<(BlockId, Vec<BlockId>)> = cl
        .exits
        .iter()
        .map(|&x| {
            (
                x,
                preds[x.index()]
                    .iter()
                    .copied()
                    .filter(|p| loop_set.contains(p))
                    .collect(),
            )
        })
        .collect();

    // Patch exit phis: each copy's exiting blocks become new predecessors.
    for map in &copies {
        for (x, inside) in &exit_inside_preds {
            for &p in inside {
                add_phi_incomings_for_clone(f, *x, p, map);
            }
        }
    }

    // Rewire copy k's header phis to take values from copy k-1's latch.
    // map_value of copy 0 is the identity.
    let map_block = |copies: &[CloneMap], k: usize, b: BlockId| -> BlockId {
        if k == 0 {
            b
        } else {
            copies[k - 1].map_block(b)
        }
    };
    let map_value = |copies: &[CloneMap], k: usize, v: Value| -> Value {
        if k == 0 {
            v
        } else {
            copies[k - 1].map_value(v)
        }
    };
    for k in 1..u {
        let hk = map_block(&copies, k, header);
        let phis_k = f.phis(hk);
        for (pi, &phi) in phis_k.iter().enumerate() {
            let prev_latch = map_block(&copies, k - 1, latch);
            let prev_value = map_value(&copies, k - 1, latch_incoming[pi]);
            if let InstKind::Phi { incomings } = &mut f.inst_mut(phi).kind {
                incomings.clear();
                incomings.push((prev_latch, prev_value));
            }
        }
        // Resolution is deferred (see below): a latch incoming may itself be
        // a header phi (e.g. `acc_next = i`), so copy k's phi can reference
        // copy k-1's phi — resolving eagerly would leave later copies
        // pointing at already-unlinked instructions.
    }

    // Original header phis: the in-loop value now arrives from the LAST
    // copy's latch.
    for (pi, &phi) in header_phis.iter().enumerate() {
        let last_latch = map_block(&copies, u - 1, latch);
        let last_value = map_value(&copies, u - 1, latch_incoming[pi]);
        if let InstKind::Phi { incomings } = &mut f.inst_mut(phi).kind {
            for (b, v) in incomings.iter_mut() {
                if *b == latch {
                    *b = last_latch;
                    *v = last_value;
                }
            }
        }
    }

    // Rewire back edges: latch_k -> header_{k+1}, last latch -> header.
    for k in 0..u {
        let lk = map_block(&copies, k, latch);
        let target_header = if k + 1 < u {
            map_block(&copies, k + 1, header)
        } else {
            header
        };
        let current_header = map_block(&copies, k, header);
        let t = f.terminator(lk).expect("latch has a terminator");
        f.inst_mut(t).kind.replace_block(current_header, target_header);
    }

    // Now resolve the copies' single-incoming header phis, in copy order so
    // that chains through other header phis substitute transitively.
    for k in 1..u {
        resolve_trivial_phis(f, map_block(&copies, k, header));
    }

    // Collect all blocks.
    let mut all_blocks: Vec<BlockId> = cl.blocks.clone();
    for map in &copies {
        all_blocks.extend(map.cloned_blocks());
    }
    all_blocks.sort();
    let final_latch = map_block(&copies, u - 1, latch);
    UnrollResult {
        canonical: cl,
        copies,
        all_blocks,
        final_latch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_analysis::{DomTree, LoopForest, LoopId};
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type};

    /// sum = 0; i = 0; while (i < n) { sum += i; i += 1 } return sum
    fn sum_loop() -> uu_ir::Function {
        let mut f = uu_ir::Function::new("sum", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        let s = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        b.add_phi_incoming(s, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let s1 = b.add(s, i);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.add_phi_incoming(s, body, s1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(s));
        f
    }

    fn unroll_by(f: &mut uu_ir::Function, factor: u32) -> UnrollResult {
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        let l = forest.get(LoopId(0)).clone();
        unroll_loop(f, l.header, &l.blocks, &l.latches, factor).expect("unrollable")
    }

    #[test]
    fn unroll_by_two_verifies() {
        let mut f = sum_loop();
        let r = unroll_by(&mut f, 2);
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        assert_eq!(r.copies.len(), 1);
        // Loop now spans twice the blocks (header + body per copy).
        assert_eq!(r.all_blocks.len(), 4);
    }

    #[test]
    fn unroll_preserves_loop_structure() {
        let mut f = sum_loop();
        let r = unroll_by(&mut f, 4);
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        // Still exactly one natural loop, headed at the original header.
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest.loops()[0].header, r.canonical.header);
        assert_eq!(forest.loops()[0].latches, vec![r.final_latch]);
        // The unrolled loop contains all copies.
        assert_eq!(forest.loops()[0].blocks.len(), r.all_blocks.len());
    }

    /// Regression: when one header phi's latch incoming is *another* header
    /// phi (`acc_next = i`), copy k's resolved phi must not end up pointing
    /// at copy k-1's already-unlinked phi.
    #[test]
    fn cross_phi_latch_incomings_unroll_correctly() {
        // i, acc phis; acc's latch incoming is the i phi itself.
        let mut f = uu_ir::Function::new("x", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        let acc = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        b.add_phi_incoming(acc, entry, Value::imm(-7i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.add_phi_incoming(acc, body, i); // acc_next = i (a header phi!)
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(acc));
        uu_ir::verify_function(&f).unwrap();
        let r = unroll_by(&mut f, 4);
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        assert_eq!(r.copies.len(), 3);
    }

    #[test]
    fn factor_one_is_rejected() {
        let mut f = sum_loop();
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        let l = forest.get(LoopId(0)).clone();
        assert!(unroll_loop(&mut f, l.header, &l.blocks, &l.latches, 1).is_none());
    }

    #[test]
    fn each_copy_keeps_its_exit_check() {
        let mut f = sum_loop();
        let r = unroll_by(&mut f, 3);
        uu_ir::verify_function(&f).unwrap();
        // The dedicated exit has one phi with three incomings (one per
        // header copy).
        let exit = r.canonical.exits[0];
        let phis = f.phis(exit);
        assert_eq!(phis.len(), 1);
        match &f.inst(phis[0]).kind {
            InstKind::Phi { incomings } => assert_eq!(incomings.len(), 3),
            _ => unreachable!(),
        }
    }
}

//! Runtime unrolling: a checkless main loop plus an epilogue.
//!
//! For a canonical affine loop `for (i = init; i <pred> bound; i += step)`
//! whose bound is only known at run time, runtime unrolling by `u` builds:
//!
//! ```text
//! main:  while (i <pred> bound - (u-1)·step) { body; body; ... ×u }
//! epi:   while (i <pred> bound)              { body }   // leftovers
//! ```
//!
//! The main loop evaluates the exit condition once per `u` iterations — the
//! "beneficial runtime unrolling" of LLVM that the paper's *ccs* analysis
//! identifies (§IV-C RQ1): when the u&u pass claims such a loop, this
//! optimization is suppressed and the application slows down.

use crate::clone::{add_phi_incomings_for_clone, clone_region, remove_phi_incomings_from};
use crate::loopsimplify::canonicalize_loop;
use crate::unroll::unroll_canonical;
use uu_analysis::{affine_loop, DomTree, LoopForest, LoopId};
use uu_ir::{BinOp, BlockId, Function, Inst, InstKind, Value};

/// Runtime-unroll the loop at `header` by `factor`.
///
/// Returns `false` (leaving only semantics-preserving canonicalization
/// behind) when the loop is not a recognizable affine loop, has more than
/// one exit, or live-out values are not expressible through header phis.
pub fn runtime_unroll(
    f: &mut Function,
    header: BlockId,
    blocks: &[BlockId],
    latches: &[BlockId],
    factor: u32,
) -> bool {
    if factor < 2 {
        return false;
    }
    let Some(cl) = canonicalize_loop(f, header, blocks, latches) else {
        return false;
    };
    // Re-derive the loop and its affine shape post-canonicalization.
    let dom = DomTree::compute(f);
    let forest = LoopForest::compute(f, &dom);
    let Some(lix) = forest.loops().iter().position(|l| l.header == header) else {
        return false;
    };
    let Some(aff) = affine_loop(f, &forest, LoopId(lix)) else {
        return false;
    };
    // Single exit, and it must be taken from the header.
    if cl.exits.len() != 1 {
        return false;
    }
    let exit = cl.exits[0];
    let preds = f.predecessors();
    if preds[exit.index()] != vec![cl.header] {
        return false;
    }
    // Live-outs must be header phis, constants or outside definitions: the
    // epilogue re-establishes them from its own phis.
    let header_phis = f.phis(cl.header);
    for phi in f.phis(exit) {
        if let InstKind::Phi { incomings } = &f.inst(phi).kind {
            for (p, v) in incomings {
                debug_assert_eq!(*p, cl.header);
                match v {
                    Value::Inst(i) if !header_phis.contains(i) => return false,
                    _ => {}
                }
            }
        }
    }

    // --- b. epilogue: a full clone of the canonical loop ---
    let epi = clone_region(f, &cl.blocks);
    let epi_header = epi.map_block(cl.header);
    // The epilogue must never be unrolled in turn (the baseline unroller
    // would otherwise recurse on it forever).
    f.set_loop_pragma(epi_header, uu_ir::LoopPragma::NoUnroll);
    // Exit phis gain incomings from the epilogue's exiting header.
    add_phi_incomings_for_clone(f, exit, cl.header, &epi);

    // --- c. unroll the original (main) loop ---
    let header_phi_ids = f.phis(cl.header);
    let r = unroll_canonical(f, cl.clone(), factor);

    // --- d. kill the inner copies' exit checks ---
    for map in &r.copies {
        let hk = map.map_block(cl.header);
        let t = f.terminator(hk).expect("header terminator");
        if let InstKind::CondBr {
            if_true, if_false, ..
        } = f.inst(t).kind
        {
            let (cont, ex) = if aff.exit_is_false {
                (if_true, if_false)
            } else {
                (if_false, if_true)
            };
            f.inst_mut(t).kind = InstKind::Br { target: cont };
            remove_phi_incomings_from(f, ex, hk);
        }
    }

    // --- e. main loop exits into the epilogue ---
    let h0 = cl.header;
    let t0 = f.terminator(h0).expect("terminator");
    f.inst_mut(t0).kind.replace_block(exit, epi_header);
    remove_phi_incomings_from(f, exit, h0);
    // Epilogue header phis: the out-of-loop incoming now comes from the
    // main header, carrying the main loop's current phi values.
    for &op in &header_phi_ids {
        let ep = epi.inst(op).expect("header phi was cloned");
        if let InstKind::Phi { incomings } = &mut f.inst_mut(ep).kind {
            for (p, v) in incomings.iter_mut() {
                if *p == cl.preheader {
                    *p = h0;
                    *v = Value::Inst(op);
                }
            }
        }
    }

    // --- f. strengthen the main-loop bound: bound' = bound - (u-1)*step ---
    let adjust = (factor as i64 - 1) * aff.step;
    let ty = f.value_type(aff.bound);
    let adj_const = match ty {
        uu_ir::Type::I32 => Value::imm(adjust as i32),
        _ => Value::imm(adjust),
    };
    let bound_adj = f.create_inst(Inst::new(
        InstKind::Bin {
            op: BinOp::Sub,
            lhs: aff.bound,
            rhs: adj_const,
        },
        ty,
    ));
    // Insert in the preheader, before its terminator.
    let ph_term_pos = f.block(cl.preheader).insts.len() - 1;
    f.block_mut(cl.preheader)
        .insts
        .insert(ph_term_pos, bound_adj);
    // New comparison in the main header against the adjusted bound.
    let InstKind::ICmp { pred, lhs, rhs } = f.inst(aff.cmp).kind else {
        return false;
    };
    let (nl, nr) = if lhs == aff.bound {
        (Value::Inst(bound_adj), rhs)
    } else {
        (lhs, Value::Inst(bound_adj))
    };
    let new_cmp = f.create_inst(Inst::new(InstKind::ICmp { pred, lhs: nl, rhs: nr }, uu_ir::Type::I1));
    let pos = f.block(h0).insts.len() - 1;
    f.block_mut(h0).insts.insert(pos, new_cmp);
    if let InstKind::CondBr { cond, .. } = &mut f.inst_mut(t0).kind {
        *cond = Value::Inst(new_cmp);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, ICmpPred, Param, Type};

    /// sum += a[i] for i in 0..n — affine loop with runtime bound.
    fn sum_kernel() -> uu_ir::Function {
        let mut f = uu_ir::Function::new(
            "sum",
            vec![Param::new("a", Type::Ptr), Param::new("n", Type::I64)],
            Type::F64,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        let s = b.phi(Type::F64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        b.add_phi_incoming(s, entry, Value::imm(0.0f64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let pa = b.gep(Value::Arg(0), i, 8);
        let v = b.load(Type::F64, pa);
        let s1 = b.fadd(s, v);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.add_phi_incoming(s, body, s1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(s));
        f
    }

    fn apply(f: &mut uu_ir::Function, factor: u32) -> bool {
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        let l = forest.get(LoopId(0)).clone();
        runtime_unroll(f, l.header, &l.blocks, &l.latches, factor)
    }

    #[test]
    fn produces_main_and_epilogue() {
        let mut f = sum_kernel();
        assert!(apply(&mut f, 4));
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        // Two loops now: the unrolled main and the epilogue.
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        assert_eq!(forest.len(), 2, "{f}");
        // Exactly two conditional branches in loop headers: main + epilogue
        // (inner copies are checkless).
        let condbrs = f
            .iter_insts()
            .filter(|(_, i)| matches!(i.kind, InstKind::CondBr { .. }))
            .count();
        assert_eq!(condbrs, 2, "{f}");
    }

    #[test]
    fn execution_matches_unoptimized() {
        use uu_simt::{Gpu, KernelArg, LaunchConfig};
        for n in [0i64, 1, 3, 4, 7, 16, 17, 31] {
            let data: Vec<f64> = (0..32).map(|i| (i as f64) * 0.25 + 1.0).collect();
            fn storing_kernel() -> uu_ir::Function {
                let mut f = uu_ir::Function::new(
                    "sumstore",
                    vec![
                        Param::new("a", Type::Ptr),
                        Param::new("n", Type::I64),
                        Param::new("out", Type::Ptr),
                    ],
                    Type::Void,
                );
                let entry = f.entry();
                let mut b = FunctionBuilder::new(&mut f);
                let h = b.create_block();
                let body = b.create_block();
                let exit = b.create_block();
                b.switch_to(entry);
                b.br(h);
                b.switch_to(h);
                let i = b.phi(Type::I64);
                let s = b.phi(Type::F64);
                b.add_phi_incoming(i, entry, Value::imm(0i64));
                b.add_phi_incoming(s, entry, Value::imm(0.0f64));
                let c = b.icmp(ICmpPred::Slt, i, Value::Arg(1));
                b.cond_br(c, body, exit);
                b.switch_to(body);
                let pa = b.gep(Value::Arg(0), i, 8);
                let v = b.load(Type::F64, pa);
                let s1 = b.fadd(s, v);
                let i1 = b.add(i, Value::imm(1i64));
                b.add_phi_incoming(i, body, i1);
                b.add_phi_incoming(s, body, s1);
                b.br(h);
                b.switch_to(exit);
                b.store(Value::Arg(2), s);
                b.ret(None);
                f
            }
            let base = storing_kernel();
            let mut unrolled = storing_kernel();
            assert!(apply(&mut unrolled, 4));
            uu_ir::verify_function(&unrolled).unwrap_or_else(|e| panic!("{e}\n{unrolled}"));
            let exec = |k: &uu_ir::Function| -> f64 {
                let mut gpu = Gpu::new();
                let ba = gpu.mem.alloc_f64(&data).unwrap();
                let bo = gpu.mem.alloc_f64(&[0.0]).unwrap();
                gpu.launch(
                    k,
                    LaunchConfig::new(1, 1),
                    &[
                        KernelArg::Buffer(ba),
                        KernelArg::I64(n),
                        KernelArg::Buffer(bo),
                    ],
                )
                .unwrap_or_else(|e| panic!("{e}\n{k}"));
                gpu.mem.read_f64(bo).unwrap()[0]
            };
            assert_eq!(exec(&base), exec(&unrolled), "n = {n}");
        }
    }

    #[test]
    fn fewer_checks_executed() {
        use uu_simt::{Gpu, KernelArg, LaunchConfig};
        let mut base = sum_kernel();
        crate::opt::run_cleanup(&mut base, 8);
        let mut unrolled = sum_kernel();
        assert!(apply(&mut unrolled, 4));
        crate::opt::run_cleanup(&mut unrolled, 8);
        let run = |k: &uu_ir::Function| -> u64 {
            let mut gpu = Gpu::new();
            let ba = gpu.mem.alloc_f64(&vec![1.0; 64]).unwrap();
            let rep = gpu
                .launch(
                    k,
                    LaunchConfig::new(1, 1),
                    &[KernelArg::Buffer(ba), KernelArg::I64(64)],
                )
                .unwrap();
            rep.metrics.thread_control + rep.metrics.thread_arith
        };
        assert!(
            run(&unrolled) < run(&base),
            "runtime unrolling must shrink dynamic overhead"
        );
    }

    #[test]
    fn rejects_non_affine_loops() {
        // Multiplicative induction: not affine.
        let mut f = uu_ir::Function::new("g", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(1i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.mul(i, Value::imm(2i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        assert!(!apply(&mut f, 4));
        uu_ir::verify_function(&f).unwrap();
    }
}

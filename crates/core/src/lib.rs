//! # uu-core — the unroll & unmerge transformation and its pipeline
//!
//! This crate is the primary contribution of the reproduced paper,
//! *Enhancing Performance through Control-Flow Unmerging and Loop Unrolling
//! on GPUs* (CGO 2024):
//!
//! * [`unmerge`] — control-flow unmerging: tail-duplicate merge blocks in a
//!   loop body (whole-path, as the paper advocates, or DBDS-style direct
//!   successor for the ablation);
//! * [`unroll`] — while-style loop unrolling correct for non-counted loops;
//! * [`uu`] — the combined transformation, with the paper's loop-nest
//!   policy;
//! * [`heuristic`] — the size heuristic `f(p, s, u) = Σ p^i·s < c` with
//!   `u_max`, pragma/convergence skipping and the optional divergence guard;
//! * [`opt`] — the *subsequent optimizations* that u&u enables: SCCP, GVN
//!   with alias-aware load elimination, branch-condition propagation,
//!   if-conversion (the baseline's predication), CFG simplification and DCE
//!   — plus [`opt::meld`], the DARM-style rival transform that *melds*
//!   divergent diamonds instead of splitting merged control flow;
//! * [`baseline_unroll`] — the baseline compiler's own unrolling;
//! * [`pipeline`] — the five measurement configurations of §IV-B.
//!
//! ## Example
//!
//! ```
//! use uu_ir::{Function, FunctionBuilder, ICmpPred, Param, Type, Value};
//! use uu_core::uu::{uu_loop, UuOptions};
//!
//! // while (i < n) { if (c) x = i + 10; i += x }
//! let mut f = Function::new(
//!     "k",
//!     vec![Param::new("n", Type::I64), Param::new("c", Type::I1)],
//!     Type::I64,
//! );
//! let entry = f.entry();
//! let mut b = FunctionBuilder::new(&mut f);
//! let (h, t, m, exit) = (
//!     b.create_block(),
//!     b.create_block(),
//!     b.create_block(),
//!     b.create_block(),
//! );
//! b.switch_to(entry);
//! b.br(h);
//! b.switch_to(h);
//! let i = b.phi(Type::I64);
//! b.add_phi_incoming(i, entry, Value::imm(0i64));
//! let cond = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
//! b.cond_br(cond, t, exit);
//! b.switch_to(t);
//! let x = b.add(i, Value::imm(10i64));
//! b.cond_br(Value::Arg(1), m, m);
//! b.switch_to(m);
//! let i1 = b.add(i, x);
//! b.add_phi_incoming(i, m, i1);
//! b.br(h);
//! b.switch_to(exit);
//! b.ret(Some(i));
//!
//! let out = uu_loop(&mut f, h, &UuOptions { factor: 2, ..Default::default() });
//! assert!(out.applied);
//! uu_ir::verify_function(&f).unwrap();
//! ```

#![warn(missing_docs)]

pub mod baseline_unroll;
pub mod clone;
pub mod heuristic;
pub mod loopsimplify;
pub mod opt;
pub mod pipeline;
pub mod recover;
pub mod runtime_unroll;
pub mod unmerge;
pub mod unroll;
pub mod uu;

pub use heuristic::{Decision, HeuristicOptions};
pub use opt::meld::{meld_function, meld_loop, Meld};
pub use pipeline::{
    compile, fingerprint_of, pipeline_fingerprint, CompileOutcome, LoopFilter, PassPosition,
    PipelineOptions, Transform, PASS_VERSIONS, PIPELINE_SCHEMA_VERSION, WORK_PER_MS,
};
pub use recover::{
    parse_at_seed, FailureReason, FaultKind, FaultPlan, PassFailure, PassInvocation, Rung,
};
pub use unmerge::{UnmergeMode, UnmergeOptions};
pub use uu::{uu_loop, UuOptions};

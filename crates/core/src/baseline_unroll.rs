//! The baseline compiler's own loop unrolling (LLVM `-O3` stand-in).
//!
//! The paper's baseline is plain `-O3`, which *also* unrolls loops when
//! profitable (§IV-B): small counted loops are fully unrolled, and small
//! innermost loops get runtime unrolling. Two observed interactions in the
//! paper depend on this pass existing:
//!
//! * *coordinates*: the baseline fully unrolls the hot loop; adding the u&u
//!   pass tags the loop and inhibits that unrolling — which happened to be
//!   faster.
//! * *ccs*: u&u on its many small loops suppresses the baseline's
//!   *beneficial* runtime unrolling, causing the heuristic's slowdown.
//!
//! Full unrolling of a counted loop with trip count `tc` is implemented as a
//! while-style unroll by `tc + 1`: the `+1` copy's exit condition folds to
//! false under SCCP, which then proves the remaining back edge dead and
//! collapses every induction value to a constant — the loop evaporates.

use crate::runtime_unroll::runtime_unroll;
use crate::unroll::unroll_loop;
use uu_analysis::{convergence, cost, trip_count, DomTree, LoopForest, LoopId};
use uu_ir::{Function, LoopPragma};

/// Profitability thresholds, loosely modelled on LLVM defaults.
#[derive(Debug, Clone, Copy)]
pub struct BaselineUnrollOptions {
    /// Fully unroll counted loops with `trip_count <= full_max_trip`.
    pub full_max_trip: u64,
    /// ... as long as `trip_count * body_size <= full_size_budget`.
    pub full_size_budget: u64,
    /// Runtime-unroll factor for small innermost loops.
    pub runtime_factor: u32,
    /// Max body size eligible for runtime unrolling.
    pub runtime_max_size: u64,
}

impl Default for BaselineUnrollOptions {
    fn default() -> Self {
        BaselineUnrollOptions {
            full_max_trip: 32,
            full_size_budget: 1024,
            runtime_factor: 4,
            runtime_max_size: 24,
        }
    }
}

/// What the baseline unroller did to a function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselineUnrollStats {
    /// Loops fully unrolled.
    pub full: usize,
    /// Loops runtime-unrolled.
    pub runtime: usize,
    /// Loops unrolled due to a user `#pragma unroll N`.
    pub pragma: usize,
}

/// Run baseline unrolling over every eligible loop of `f`.
///
/// Loops tagged [`LoopPragma::NoUnroll`] (user pragma or set by a previous
/// u&u application) are skipped; [`LoopPragma::Unroll`] is honoured.
pub fn baseline_unroll(f: &mut Function, opts: &BaselineUnrollOptions) -> BaselineUnrollStats {
    let mut stats = BaselineUnrollStats::default();
    // Each application invalidates the forest; iterate until no candidate.
    loop {
        let dom = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dom);
        let mut candidate: Option<(LoopId, u32, Which)> = None;
        for id in forest.innermost_first() {
            let l = forest.get(id);
            match f.loop_pragma(l.header) {
                Some(LoopPragma::NoUnroll) => continue,
                Some(LoopPragma::Unroll(n)) => {
                    if n >= 2 {
                        candidate = Some((id, n, Which::Pragma));
                        break;
                    }
                    continue;
                }
                None => {}
            }
            if convergence::loop_has_convergent(f, &forest, id) {
                continue;
            }
            let size = cost::loop_size(f, &forest, id);
            if let Some(cl) = trip_count(f, &forest, id) {
                if cl.trip_count >= 1
                    && cl.trip_count <= opts.full_max_trip
                    && cl.trip_count.saturating_mul(size) <= opts.full_size_budget
                {
                    candidate = Some((id, cl.trip_count as u32 + 1, Which::Full));
                    break;
                }
            }
            if l.is_innermost()
                && size <= opts.runtime_max_size
                && uu_analysis::count_loop_paths(f, &forest, id) == 1
            {
                candidate = Some((id, opts.runtime_factor, Which::Runtime));
                break;
            }
        }
        let Some((id, factor, which)) = candidate else {
            break;
        };
        let l = forest.get(id).clone();
        // Tag first so a failed canonicalization does not loop forever.
        f.set_loop_pragma(l.header, LoopPragma::NoUnroll);
        match which {
            Which::Runtime => {
                // Real runtime unrolling: checkless main loop + epilogue.
                if runtime_unroll(f, l.header, &l.blocks, &l.latches, factor) {
                    stats.runtime += 1;
                }
            }
            Which::Full => {
                if unroll_loop(f, l.header, &l.blocks, &l.latches, factor).is_some() {
                    stats.full += 1;
                }
            }
            Which::Pragma => {
                if unroll_loop(f, l.header, &l.blocks, &l.latches, factor).is_some() {
                    stats.pragma += 1;
                }
            }
        }
    }
    stats
}

#[derive(Debug, Clone, Copy)]
enum Which {
    Full,
    Runtime,
    Pragma,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::run_cleanup;
    use uu_ir::{FunctionBuilder, ICmpPred, InstKind, Param, Type, Value};

    /// for (i = 0; i < 4; i++) acc += i  — summed into memory at the end.
    fn counted4() -> uu_ir::Function {
        let mut f = uu_ir::Function::new("c4", vec![Param::new("p", Type::Ptr)], Type::Void);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        let acc = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        b.add_phi_incoming(acc, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::imm(4i64));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let acc1 = b.add(acc, i);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.add_phi_incoming(acc, body, acc1);
        b.br(h);
        b.switch_to(exit);
        b.store(Value::Arg(0), acc);
        b.ret(None);
        f
    }

    #[test]
    fn fully_unrolls_and_folds_counted_loop() {
        let mut f = counted4();
        let stats = baseline_unroll(&mut f, &BaselineUnrollOptions::default());
        assert_eq!(stats.full, 1);
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        run_cleanup(&mut f, 8);
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
        // The loop is gone: no back edges remain and the stored value is
        // the constant 0+1+2+3 = 6.
        let dom = uu_analysis::DomTree::compute(&f);
        let forest = uu_analysis::LoopForest::compute(&f, &dom);
        assert!(forest.is_empty(), "loop should fold away:\n{f}");
        let store = f
            .iter_insts()
            .find(|(_, i)| i.kind.writes_memory())
            .map(|(id, _)| id)
            .unwrap();
        match &f.inst(store).kind {
            InstKind::Store { value, .. } => {
                assert_eq!(value.as_const().unwrap().as_i64(), Some(6), "{f}")
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn skips_nounroll_tagged_loops() {
        let mut f = counted4();
        let h = uu_ir::BlockId::from_index(1);
        f.set_loop_pragma(h, LoopPragma::NoUnroll);
        let stats = baseline_unroll(&mut f, &BaselineUnrollOptions::default());
        assert_eq!(stats, BaselineUnrollStats::default());
    }

    #[test]
    fn honours_user_pragma_unroll() {
        let mut f = counted4();
        let h = uu_ir::BlockId::from_index(1);
        f.set_loop_pragma(h, LoopPragma::Unroll(2));
        let stats = baseline_unroll(&mut f, &BaselineUnrollOptions::default());
        assert_eq!(stats.pragma, 1);
        assert_eq!(stats.full, 0);
        uu_ir::verify_function(&f).unwrap();
    }

    #[test]
    fn runtime_unrolls_small_straightline_innermost() {
        // Non-counted loop (bound is an argument): runtime unroll by 4.
        let mut f = uu_ir::Function::new("rt", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        let before = f.num_blocks();
        let stats = baseline_unroll(&mut f, &BaselineUnrollOptions::default());
        assert_eq!(stats.runtime, 1);
        assert!(f.num_blocks() > before);
        uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{e}\n{f}"));
    }

    #[test]
    fn branchy_loops_are_not_runtime_unrolled() {
        // Two paths in the body → no runtime unroll (matches LLVM's
        // reluctance to runtime-unroll branchy bodies).
        let mut f = uu_ir::Function::new(
            "br",
            vec![Param::new("n", Type::I64), Param::new("c", Type::I1)],
            Type::Void,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let t = b.create_block();
        let m = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, t, exit);
        b.switch_to(t);
        b.cond_br(Value::Arg(1), m, m);
        b.switch_to(m);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, m, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(None);
        let stats = baseline_unroll(&mut f, &BaselineUnrollOptions::default());
        assert_eq!(stats.runtime, 0);
    }
}

//! Crash recovery and deterministic fault injection for the pipeline.
//!
//! The paper's experiment is a large product space — 16 kernels × every
//! loop × every configuration — pushed through an aggressive pass stack.
//! Chained loop transformations composing into invalid IR is a known
//! failure mode of exactly this kind of pipeline (Kruse & Finkel's loop
//! framework survey), and LLVM answers it operationally with
//! `CrashRecoveryContext` and `-opt-bisect-limit`. This module provides
//! the native equivalents:
//!
//! * [`PassFailure`] — the structured diagnostic recorded when a guarded
//!   pass invocation panics or produces verifier-rejected IR; the function
//!   is rolled back to its pre-pass snapshot and compilation continues;
//! * [`Rung`] — the degradation ladder a compile walks instead of
//!   aborting: full config → offending pass dropped → transform abandoned
//!   (the config retried as baseline `-O3`) → unoptimized input IR;
//! * [`FaultPlan`] — a seeded, deterministic fault-injection plan
//!   (`UU_FAULT=<kind>@<index>[:<seed>]`) that exercises every recovery
//!   path reproducibly: injected pass panics, verifier-detectable IR
//!   corruption, silent miscompiles (for bisection tests), work-budget
//!   exhaustion, and simulator memory faults.
//!
//! Every recovery decision is a pure function of the input module, the
//! options and the plan — never of wall-clock time or worker count — so
//! sweep reports stay byte-identical under `UU_JOBS=1` and `UU_JOBS=4`
//! even while faults are being injected.

use uu_ir::{BinOp, Function, ICmpPred, Inst, InstKind, Type};

/// Which fault a [`FaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the targeted pass invocation (exercises
    /// `catch_unwind` + rollback).
    Panic,
    /// Verifier-detectable IR corruption after the targeted pass
    /// (exercises post-pass verification + rollback).
    Corrupt,
    /// A verifier-clean but semantics-changing IR mutation after the
    /// targeted pass — a synthetic miscompile, the target the opt-bisect
    /// machinery must pinpoint.
    Miscompile,
    /// Work-budget exhaustion at the targeted pass (exercises the
    /// deterministic-timeout path).
    Exhaust,
    /// A device-memory fault after `at` kernel memory accesses. Ignored
    /// by the pipeline; consumed by the harness, which arms
    /// `uu_simt::GlobalMemory::inject_fault_after`.
    Mem,
}

impl FaultKind {
    /// The spec-grammar keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Miscompile => "miscompile",
            FaultKind::Exhaust => "exhaust",
            FaultKind::Mem => "mem",
        }
    }
}

/// A deterministic fault-injection plan.
///
/// Spec grammar (the `UU_FAULT` environment variable):
///
/// ```text
/// <kind>@<index>[:<seed>]
/// kind  := panic | corrupt | miscompile | exhaust | mem
/// index := pass-invocation index within each compile (decimal),
///          or the kernel memory-access index for `mem`
/// seed  := u64 (decimal or 0x-hex) driving mutation-site selection;
///          defaults to 0
/// ```
///
/// The index counts guarded pass invocations *within one compile*, always
/// starting at zero, so the same plan fires at the same point of every
/// (kernel, loop, config) compile regardless of execution order — the
/// property that keeps fault-injected sweeps byte-identical across worker
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to inject.
    pub kind: FaultKind,
    /// Pass-invocation index (or memory-access index for
    /// [`FaultKind::Mem`]) at which the fault fires.
    pub at: u64,
    /// Seed selecting the mutation site for `corrupt` / `miscompile`.
    pub seed: u64,
}

impl FaultPlan {
    /// Parse a spec string (see the type-level grammar).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed component.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let s = spec.trim();
        let (kind_s, rest) = s
            .split_once('@')
            .ok_or_else(|| format!("fault spec `{s}` is missing `@<index>`"))?;
        let kind = match kind_s {
            "panic" => FaultKind::Panic,
            "corrupt" => FaultKind::Corrupt,
            "miscompile" => FaultKind::Miscompile,
            "exhaust" => FaultKind::Exhaust,
            "mem" => FaultKind::Mem,
            other => {
                return Err(format!(
                    "unknown fault kind `{other}` (expected panic|corrupt|miscompile|exhaust|mem)"
                ))
            }
        };
        let (at, seed) = parse_at_seed(rest)?;
        Ok(FaultPlan { kind, at, seed })
    }

    /// Read the plan from the `UU_FAULT` environment variable.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec — a misconfigured injection run should
    /// fail loudly, not silently measure nothing.
    pub fn from_env() -> Option<FaultPlan> {
        let v = std::env::var("UU_FAULT").ok()?;
        if v.trim().is_empty() {
            return None;
        }
        Some(Self::parse(&v).unwrap_or_else(|e| panic!("UU_FAULT: {e}")))
    }

    /// Render the plan back in spec-grammar form.
    pub fn spec(&self) -> String {
        if self.seed == 0 {
            format!("{}@{}", self.kind.as_str(), self.at)
        } else {
            format!("{}@{}:{:#x}", self.kind.as_str(), self.at, self.seed)
        }
    }
}

/// Parse the `<index>[:<seed>]` tail of a fault spec: a decimal u64
/// index, optionally followed by `:` and a u64 seed (decimal or 0x-hex,
/// defaulting to 0). Shared by [`FaultPlan::parse`] and the service-level
/// fault grammar in `uu-serve` (`UU_SERVE_FAULT`), so the two spec
/// languages cannot drift apart.
///
/// # Errors
///
/// Returns a description of the malformed component.
pub fn parse_at_seed(rest: &str) -> Result<(u64, u64), String> {
    let (at_s, seed_s) = match rest.split_once(':') {
        Some((a, b)) => (a, Some(b)),
        None => (rest, None),
    };
    let at = at_s
        .parse::<u64>()
        .map_err(|_| format!("fault index `{at_s}` is not a u64"))?;
    let seed = match seed_s {
        None => 0,
        Some(t) => match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16)
                .map_err(|_| format!("fault seed `{t}` is not a u64"))?,
            None => t
                .parse::<u64>()
                .map_err(|_| format!("fault seed `{t}` is not a u64"))?,
        },
    };
    Ok((at, seed))
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.spec())
    }
}

/// Why a guarded pass invocation was rolled back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureReason {
    /// The pass panicked; the payload message is preserved.
    Panic(String),
    /// The pass completed but left verifier-rejected IR.
    Verifier(String),
    /// The compile's work budget was exhausted at this pass (injected or
    /// organic); the IR is valid but later passes did not run.
    Budget(String),
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Only the first line: verifier reports are multi-line, and these
        // strings end up in single-line report rows.
        let (tag, msg) = match self {
            FailureReason::Panic(m) => ("panic", m),
            FailureReason::Verifier(m) => ("verifier", m),
            FailureReason::Budget(m) => ("budget", m),
        };
        write!(f, "{tag}: {}", msg.lines().next().unwrap_or(""))
    }
}

/// The structured diagnostic for one contained pass failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassFailure {
    /// Pass name (as in [`crate::pipeline::PassTiming`]).
    pub pass: &'static str,
    /// Pass-invocation index within the compile (the opt-bisect counter).
    pub index: u64,
    /// Function being processed.
    pub function: String,
    /// What went wrong.
    pub reason: FailureReason,
    /// Whether the function was rolled back to its pre-pass snapshot
    /// (false only for budget exhaustion, which leaves valid IR behind).
    pub rolled_back: bool,
}

impl std::fmt::Display for PassFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}#{}@{}: {}{}",
            self.pass,
            self.index,
            self.function,
            self.reason,
            if self.rolled_back { " [rolled back]" } else { "" }
        )
    }
}

/// One executed pass invocation (the opt-bisect log).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassInvocation {
    /// Invocation index (stable across bisect limits: invocation `i`
    /// depends only on invocations `< i`).
    pub index: u64,
    /// Pass name.
    pub pass: &'static str,
    /// Function processed.
    pub function: String,
}

impl std::fmt::Display for PassInvocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}@{}", self.pass, self.index, self.function)
    }
}

/// The degradation ladder: which rung a compile landed on instead of
/// aborting. Ordered from best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// The requested configuration ran cleanly.
    Full,
    /// At least one cleanup/baseline pass panicked or mis-verified; it was
    /// rolled back and dropped, the transform survived.
    DroppedPass,
    /// The transform pass itself failed and was rolled back: the config
    /// effectively retried without u&u, i.e. as the baseline `-O3`
    /// pipeline (possibly with further cleanup passes dropped).
    NoTransform,
    /// Even the recovered module failed whole-module verification; the
    /// input IR was restored verbatim and nothing was optimized.
    Unoptimized,
}

impl Rung {
    /// Every rung, best to worst — the indexing base for per-rung stats.
    pub const ALL: [Rung; 4] = [
        Rung::Full,
        Rung::DroppedPass,
        Rung::NoTransform,
        Rung::Unoptimized,
    ];

    /// Stable report label.
    pub fn as_str(&self) -> &'static str {
        match self {
            Rung::Full => "full",
            Rung::DroppedPass => "dropped-pass",
            Rung::NoTransform => "no-transform",
            Rung::Unoptimized => "unoptimized",
        }
    }

    /// Parse an [`as_str`](Rung::as_str) label back — the disk round-trip
    /// for cached compile artifacts.
    pub fn from_str(s: &str) -> Option<Rung> {
        Rung::ALL.into_iter().find(|r| r.as_str() == s)
    }

    /// Position in [`Rung::ALL`] (0 = full ... 3 = unoptimized).
    pub fn index(&self) -> usize {
        Rung::ALL.iter().position(|r| r == self).unwrap_or(0)
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One SplitMix64 step — the workspace's standard seed mixer, reproduced
/// here so `uu-core` stays dependency-free on `uu-check`.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Corrupt `f` in a verifier-detectable way: append a second terminator
/// to a seed-chosen linked block, violating the "exactly one terminator,
/// at the end" invariant. Returns whether a mutation was applied.
pub fn corrupt_function(f: &mut Function, seed: u64) -> bool {
    let layout: Vec<_> = f.layout().to_vec();
    if layout.is_empty() {
        return false;
    }
    let victim = layout[(mix(seed) % layout.len() as u64) as usize];
    if f.block(victim).insts.is_empty() {
        return false;
    }
    let inst = Inst::new(InstKind::Br { target: victim }, Type::Void);
    f.append_inst(victim, inst);
    true
}

/// Mutate `f` in a verifier-clean but semantics-changing way — a
/// synthetic miscompile. Prefers flipping a seed-chosen signed `<` compare
/// to `<=` (changes trip counts while preserving termination); falls back
/// to turning an `add` into a `sub`. Returns whether a mutation was
/// applied (a function with neither site is left untouched).
pub fn miscompile_function(f: &mut Function, seed: u64) -> bool {
    let mut icmps = Vec::new();
    let mut adds = Vec::new();
    for &b in f.layout() {
        for &id in &f.block(b).insts {
            match &f.inst(id).kind {
                InstKind::ICmp {
                    pred: ICmpPred::Slt,
                    ..
                } => icmps.push(id),
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs,
                    rhs,
                } if lhs != rhs => adds.push(id),
                _ => {}
            }
        }
    }
    if !icmps.is_empty() {
        let id = icmps[(mix(seed) % icmps.len() as u64) as usize];
        if let InstKind::ICmp { pred, .. } = &mut f.inst_mut(id).kind {
            *pred = ICmpPred::Sle;
        }
        return true;
    }
    if !adds.is_empty() {
        let id = adds[(mix(seed) % adds.len() as u64) as usize];
        if let InstKind::Bin { op, .. } = &mut f.inst_mut(id).kind {
            *op = BinOp::Sub;
        }
        return true;
    }
    false
}

/// Convert a `catch_unwind` payload into a printable message.
pub fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uu_ir::{FunctionBuilder, Param, Value};

    fn small_loop() -> Function {
        let mut f = Function::new("k", vec![Param::new("n", Type::I64)], Type::I64);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f);
        let h = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        b.br(h);
        b.switch_to(h);
        let i = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::imm(0i64));
        let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i1 = b.add(i, Value::imm(1i64));
        b.add_phi_incoming(i, body, i1);
        b.br(h);
        b.switch_to(exit);
        b.ret(Some(i));
        f
    }

    #[test]
    fn spec_grammar_round_trips() {
        for s in ["panic@3", "corrupt@0", "miscompile@12:0x5eed", "exhaust@7", "mem@40"] {
            let p = FaultPlan::parse(s).unwrap();
            assert_eq!(FaultPlan::parse(&p.spec()).unwrap(), p, "{s}");
        }
        assert_eq!(
            FaultPlan::parse("panic@3:17").unwrap(),
            FaultPlan { kind: FaultKind::Panic, at: 3, seed: 17 }
        );
    }

    #[test]
    fn at_seed_tail_parses_decimal_and_hex() {
        assert_eq!(parse_at_seed("3").unwrap(), (3, 0));
        assert_eq!(parse_at_seed("3:17").unwrap(), (3, 17));
        assert_eq!(parse_at_seed("0:0x5eed").unwrap(), (0, 0x5eed));
        for bad in ["", "x", "3:", "3:zz", "-1"] {
            assert!(parse_at_seed(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for s in ["panic", "panic@", "panic@x", "frobnicate@3", "panic@3:zz", ""] {
            assert!(FaultPlan::parse(s).is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn corruption_is_verifier_detectable() {
        for seed in 0..8 {
            let mut f = small_loop();
            uu_ir::verify_function(&f).unwrap();
            assert!(corrupt_function(&mut f, seed));
            assert!(
                uu_ir::verify_function(&f).is_err(),
                "seed {seed}: corruption must not be verifier-clean"
            );
        }
    }

    #[test]
    fn miscompile_is_verifier_clean_but_changes_semantics() {
        for seed in 0..8 {
            let mut f = small_loop();
            assert!(miscompile_function(&mut f, seed));
            uu_ir::verify_function(&f)
                .unwrap_or_else(|e| panic!("seed {seed}: miscompile must stay clean: {e}"));
            // The only Slt in the loop guard became Sle.
            let sle = f
                .iter_insts()
                .filter(|(_, i)| {
                    matches!(i.kind, InstKind::ICmp { pred: ICmpPred::Sle, .. })
                })
                .count();
            assert_eq!(sle, 1, "seed {seed}");
        }
    }
}

//! Differential testing: every pipeline configuration must preserve kernel
//! semantics. Kernels are executed on the SIMT simulator before and after
//! optimization and must produce bit-identical memory.

use uu_check::Rng;
use uu_core::{compile, HeuristicOptions, PipelineOptions, Transform, UnmergeOptions};
use uu_ir::{
    CastOp, Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value,
};
use uu_simt::{Gpu, KernelArg, LaunchConfig};

/// The XSBench binary-search loop (paper Listing 1) over a sorted grid.
fn xsbench_kernel() -> Function {
    let mut f = Function::new(
        "binary_search",
        vec![
            Param::new("grid", Type::Ptr),
            Param::new("queries", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("len", Type::I64),
            Param::new("nq", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let upd = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let inb = b.icmp(ICmpPred::Slt, gid, Value::Arg(4));
    let start = b.create_block();
    let done = b.create_block();
    b.cond_br(inb, start, done);
    b.switch_to(start);
    let qa = b.gep(Value::Arg(1), gid, 8);
    let quarry = b.load(Type::F64, qa);
    b.br(header);
    b.switch_to(header);
    let lower = b.phi(Type::I64);
    let length = b.phi(Type::I64);
    let upper = b.phi(Type::I64);
    b.add_phi_incoming(lower, start, Value::imm(0i64));
    b.add_phi_incoming(length, start, Value::Arg(3));
    b.add_phi_incoming(upper, start, Value::Arg(3));
    let more = b.icmp(ICmpPred::Sgt, length, Value::imm(1i64));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    let half = b.sdiv(length, Value::imm(2i64));
    let mid = b.add(lower, half);
    let pa = b.gep(Value::Arg(0), mid, 8);
    let am = b.load(Type::F64, pa);
    let gt = b.fcmp(uu_ir::FCmpPred::Ogt, am, quarry);
    b.br(upd);
    b.switch_to(upd);
    let nupper = b.select(gt, mid, upper);
    let nlower = b.select(gt, lower, mid);
    let nlength = b.sub(nupper, nlower);
    b.add_phi_incoming(lower, upd, nlower);
    b.add_phi_incoming(length, upd, nlength);
    b.add_phi_incoming(upper, upd, nupper);
    b.br(header);
    b.switch_to(exit);
    let oa = b.gep(Value::Arg(2), gid, 8);
    b.store(oa, lower);
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    f
}

/// A variant with real branches (the post-`-O3` baseline turns them into
/// selects; u&u keeps them) — exercises unmerge on a diamond.
fn xsbench_branchy_kernel() -> Function {
    let mut f = Function::new(
        "binary_search_br",
        vec![
            Param::new("grid", Type::Ptr),
            Param::new("queries", Type::Ptr),
            Param::new("out", Type::Ptr),
            Param::new("len", Type::I64),
            Param::new("nq", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let start = b.create_block();
    let header = b.create_block();
    let body = b.create_block();
    let tblk = b.create_block();
    let eblk = b.create_block();
    let merge = b.create_block();
    let exit = b.create_block();
    let done = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let inb = b.icmp(ICmpPred::Slt, gid, Value::Arg(4));
    b.cond_br(inb, start, done);
    b.switch_to(start);
    let qa = b.gep(Value::Arg(1), gid, 8);
    let quarry = b.load(Type::F64, qa);
    b.br(header);
    b.switch_to(header);
    let lower = b.phi(Type::I64);
    let length = b.phi(Type::I64);
    let upper = b.phi(Type::I64);
    b.add_phi_incoming(lower, start, Value::imm(0i64));
    b.add_phi_incoming(length, start, Value::Arg(3));
    b.add_phi_incoming(upper, start, Value::Arg(3));
    let more = b.icmp(ICmpPred::Sgt, length, Value::imm(1i64));
    b.cond_br(more, body, exit);
    b.switch_to(body);
    let half = b.sdiv(length, Value::imm(2i64));
    let mid = b.add(lower, half);
    let pa = b.gep(Value::Arg(0), mid, 8);
    let am = b.load(Type::F64, pa);
    let gt = b.fcmp(uu_ir::FCmpPred::Ogt, am, quarry);
    b.cond_br(gt, tblk, eblk);
    b.switch_to(tblk);
    b.br(merge);
    b.switch_to(eblk);
    b.br(merge);
    b.switch_to(merge);
    let nupper = b.phi(Type::I64);
    b.add_phi_incoming(nupper, tblk, mid);
    b.add_phi_incoming(nupper, eblk, upper);
    let nlower = b.phi(Type::I64);
    b.add_phi_incoming(nlower, tblk, lower);
    b.add_phi_incoming(nlower, eblk, mid);
    let nlength = b.sub(nupper, nlower);
    b.add_phi_incoming(lower, merge, nlower);
    b.add_phi_incoming(length, merge, nlength);
    b.add_phi_incoming(upper, merge, nupper);
    b.br(header);
    b.switch_to(exit);
    let oa = b.gep(Value::Arg(2), gid, 8);
    b.store(oa, lower);
    b.br(done);
    b.switch_to(done);
    b.ret(None);
    f
}

/// The bezier-surface loop (paper Listing 2): two monotone conditions.
fn bezier_kernel() -> Function {
    let mut f = Function::new(
        "bezier_blend",
        vec![
            Param::new("out", Type::Ptr),
            Param::new("n", Type::I64),
            Param::new("k", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let c1t = b.create_block();
    let m1 = b.create_block();
    let c2t = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let kinit = b.srem(gid, Value::Arg(2));
    let nkinit = b.sub(Value::Arg(2), kinit);
    b.br(header);
    b.switch_to(header);
    let nn = b.phi(Type::I64);
    let kn = b.phi(Type::I64);
    let nkn = b.phi(Type::I64);
    let blend = b.phi(Type::F64);
    b.add_phi_incoming(nn, entry, Value::Arg(1));
    b.add_phi_incoming(kn, entry, kinit);
    b.add_phi_incoming(nkn, entry, nkinit);
    b.add_phi_incoming(blend, entry, Value::imm(1.0f64));
    let more = b.icmp(ICmpPred::Sge, nn, Value::imm(1i64));
    b.cond_br(more, c1t, exit);
    b.switch_to(c1t);
    let nnf = b.cast(CastOp::SiToFp, nn, Type::F64);
    let blend1 = b.fmul(blend, nnf);
    let nn1 = b.sub(nn, Value::imm(1i64));
    let c1 = b.icmp(ICmpPred::Sgt, kn, Value::imm(1i64));
    b.cond_br(c1, c2t, m1);
    b.switch_to(c2t);
    let knf = b.cast(CastOp::SiToFp, kn, Type::F64);
    let blend2 = b.fdiv(blend1, knf);
    let kn1 = b.sub(kn, Value::imm(1i64));
    b.br(m1);
    b.switch_to(m1);
    let blendm = b.phi(Type::F64);
    let knm = b.phi(Type::I64);
    b.add_phi_incoming(blendm, c1t, blend1);
    b.add_phi_incoming(blendm, c2t, blend2);
    b.add_phi_incoming(knm, c1t, kn);
    b.add_phi_incoming(knm, c2t, kn1);
    let c2 = b.icmp(ICmpPred::Sgt, nkn, Value::imm(1i64));
    let latch2 = b.create_block();
    b.cond_br(c2, latch2, latch);
    b.switch_to(latch2);
    let nknf = b.cast(CastOp::SiToFp, nkn, Type::F64);
    let blend3 = b.fdiv(blendm, nknf);
    let nkn1 = b.sub(nkn, Value::imm(1i64));
    b.br(latch);
    b.switch_to(latch);
    let blendl = b.phi(Type::F64);
    let nknl = b.phi(Type::I64);
    b.add_phi_incoming(blendl, m1, blendm);
    b.add_phi_incoming(blendl, latch2, blend3);
    b.add_phi_incoming(nknl, m1, nkn);
    b.add_phi_incoming(nknl, latch2, nkn1);
    b.add_phi_incoming(nn, latch, nn1);
    b.add_phi_incoming(kn, latch, knm);
    b.add_phi_incoming(nkn, latch, nknl);
    b.add_phi_incoming(blend, latch, blendl);
    b.br(header);
    b.switch_to(exit);
    let oa = b.gep(Value::Arg(0), gid, 8);
    b.store(oa, blend);
    b.ret(None);
    f
}

fn run_config(kernel: &Function, transform: Transform, out_len: usize) -> Vec<f64> {
    let mut m = Module::new("t");
    let mut k = kernel.clone();
    // Fresh clone per config.
    uu_ir::verify_function(&k).unwrap();
    let opts = PipelineOptions {
        transform,
        ..Default::default()
    };
    let id = {
        
        m.add_function(std::mem::replace(
            &mut k,
            Function::new("dummy", vec![], Type::Void),
        ))
    };
    compile(&mut m, &opts);
    uu_ir::verify_module(&m).unwrap_or_else(|e| panic!("{e}"));
    let f = m.function(id);

    let mut gpu = Gpu::new();
    let n = 64i64;
    let grid: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let queries: Vec<f64> = {
        let mut rng = Rng::seed_from_u64(42);
        (0..out_len).map(|_| rng.gen_range_f64(0.0, 32.0)).collect()
    };
    let bgrid = gpu.mem.alloc_f64(&grid).unwrap();
    let bq = gpu.mem.alloc_f64(&queries).unwrap();
    let bout = gpu.mem.alloc_f64(&vec![0.0; out_len]).unwrap();
    let args: Vec<KernelArg> = match f.params().len() {
        5 => vec![
            KernelArg::Buffer(bgrid),
            KernelArg::Buffer(bq),
            KernelArg::Buffer(bout),
            KernelArg::I64(n),
            KernelArg::I64(out_len as i64),
        ],
        3 => vec![KernelArg::Buffer(bout), KernelArg::I64(9), KernelArg::I64(5)],
        other => panic!("unexpected arity {other}"),
    };
    gpu.launch(f, LaunchConfig::new(2, 32), &args)
        .unwrap_or_else(|e| panic!("exec failed: {e}\n{f}"));
    gpu.mem.read_f64(bout).unwrap()
}

fn all_transforms() -> Vec<(&'static str, Transform)> {
    vec![
        ("baseline", Transform::Baseline),
        ("unroll2", Transform::Unroll { factor: 2 }),
        ("unroll8", Transform::Unroll { factor: 8 }),
        ("unmerge", Transform::Unmerge),
        (
            "uu2",
            Transform::Uu {
                factor: 2,
                unmerge: UnmergeOptions::default(),
            },
        ),
        (
            "uu4",
            Transform::Uu {
                factor: 4,
                unmerge: UnmergeOptions::default(),
            },
        ),
        (
            "uu8",
            Transform::Uu {
                factor: 8,
                unmerge: UnmergeOptions::default(),
            },
        ),
        (
            "heuristic",
            Transform::UuHeuristic(HeuristicOptions::default()),
        ),
    ]
}

#[test]
fn xsbench_select_form_equivalent_under_all_configs() {
    let k = xsbench_kernel();
    let golden = run_config(&k, Transform::Baseline, 40);
    for (name, t) in all_transforms() {
        let got = run_config(&k, t, 40);
        assert_eq!(got, golden, "config {name} diverged");
    }
}

#[test]
fn xsbench_branchy_form_equivalent_under_all_configs() {
    let k = xsbench_branchy_kernel();
    let golden = run_config(&k, Transform::Baseline, 40);
    for (name, t) in all_transforms() {
        let got = run_config(&k, t, 40);
        assert_eq!(got, golden, "config {name} diverged");
    }
}

#[test]
fn bezier_equivalent_under_all_configs() {
    let k = bezier_kernel();
    let golden = run_config(&k, Transform::Baseline, 64);
    for (name, t) in all_transforms() {
        let got = run_config(&k, t, 64);
        assert_eq!(got, golden, "config {name} diverged");
    }
}

#[test]
fn unoptimized_matches_baseline_output() {
    // The baseline pipeline itself must preserve semantics vs raw IR.
    let k = xsbench_branchy_kernel();
    let mut gpu = Gpu::new();
    let n = 64i64;
    let out_len = 40usize;
    let grid: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let queries: Vec<f64> = {
        let mut rng = Rng::seed_from_u64(42);
        (0..out_len).map(|_| rng.gen_range_f64(0.0, 32.0)).collect()
    };
    let bgrid = gpu.mem.alloc_f64(&grid).unwrap();
    let bq = gpu.mem.alloc_f64(&queries).unwrap();
    let bout = gpu.mem.alloc_f64(&vec![0.0; out_len]).unwrap();
    gpu.launch(
        &k,
        LaunchConfig::new(2, 32),
        &[
            KernelArg::Buffer(bgrid),
            KernelArg::Buffer(bq),
            KernelArg::Buffer(bout),
            KernelArg::I64(n),
            KernelArg::I64(out_len as i64),
        ],
    )
    .unwrap();
    let raw = gpu.mem.read_f64(bout).unwrap();
    let opt = run_config(&k, Transform::Baseline, out_len);
    assert_eq!(raw, opt);
}

//! Golden-snapshot tests for the opt passes, using the textual IR printer.
//!
//! Each test applies exactly one pass to the standard branchy subject (the
//! same 4-path loop the pass micro-benches use), after u&u duplication at
//! factor 2 so every pass sees the duplicated control flow it exists to
//! clean up. The printed IR is compared against
//! `tests/golden/<name>.ir`.
//!
//! To regenerate after an intentional pass change:
//!
//! ```sh
//! UU_UPDATE_GOLDEN=1 cargo test -p uu-core --test golden
//! ```
//!
//! then inspect the diff like any other code review.

use std::path::PathBuf;
use uu_core::opt::{
    condprop::CondProp, dce::Dce, gvn::Gvn, ifconvert::IfConvert, instsimplify::InstSimplify,
    meld::Meld, sccp::Sccp, simplifycfg::SimplifyCfg, Pass,
};
use uu_core::{meld_function, uu_loop, UuOptions};
use uu_ir::{CastOp, Function, FunctionBuilder, ICmpPred, Param, Type, Value};

/// The standard subject: a loop with a two-condition body (4 paths).
fn subject() -> Function {
    let mut f = Function::new(
        "subject",
        vec![
            Param::new("n", Type::I64),
            Param::new("k", Type::I64),
            Param::new("out", Type::Ptr),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let h = b.create_block();
    let body = b.create_block();
    let t1 = b.create_block();
    let m1 = b.create_block();
    let t2 = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    b.br(h);
    b.switch_to(h);
    let i = b.phi(Type::I64);
    let kv = b.phi(Type::I64);
    let acc = b.phi(Type::I64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(kv, entry, Value::Arg(1));
    b.add_phi_incoming(acc, entry, Value::imm(0i64));
    let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let acc1 = b.add(acc, i);
    let c1 = b.icmp(ICmpPred::Sgt, kv, Value::imm(1i64));
    b.cond_br(c1, t1, m1);
    b.switch_to(t1);
    let kv1 = b.sub(kv, Value::imm(1i64));
    b.br(m1);
    b.switch_to(m1);
    let kvm = b.phi(Type::I64);
    b.add_phi_incoming(kvm, body, kv);
    b.add_phi_incoming(kvm, t1, kv1);
    let c2 = b.icmp(ICmpPred::Sgt, acc1, Value::imm(100i64));
    b.cond_br(c2, t2, latch);
    b.switch_to(t2);
    b.br(latch);
    b.switch_to(latch);
    let accm = b.phi(Type::I64);
    b.add_phi_incoming(accm, m1, acc1);
    b.add_phi_incoming(accm, t2, Value::imm(100i64));
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, latch, i1);
    b.add_phi_incoming(kv, latch, kvm);
    b.add_phi_incoming(acc, latch, accm);
    b.br(h);
    b.switch_to(exit);
    b.store(Value::Arg(2), acc);
    b.ret(None);
    f
}

/// The subject after u&u at factor 2 — the input every cleanup pass is
/// snapshotted on.
fn transformed() -> Function {
    let mut f = subject();
    let h = f.layout()[1];
    uu_loop(
        &mut f,
        h,
        &UuOptions {
            factor: 2,
            ..Default::default()
        },
    );
    f
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.ir"))
}

fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UU_UPDATE_GOLDEN").ok().as_deref() == Some("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with UU_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        want,
        "golden snapshot '{name}' changed; if intentional, regenerate with \
         UU_UPDATE_GOLDEN=1 cargo test -p uu-core --test golden"
    );
}

fn snapshot_pass(name: &str, mut pass: impl Pass) {
    let mut f = transformed();
    pass.run(&mut f);
    uu_ir::verify_function(&f).unwrap_or_else(|e| panic!("{name} corrupted the IR: {e}\n{f}"));
    assert_golden(name, &f.to_string());
}

/// The u&u transform itself (the input all pass snapshots share).
#[test]
fn golden_uu2() {
    let f = transformed();
    uu_ir::verify_function(&f).unwrap();
    assert_golden("uu2", &f.to_string());
}

#[test]
fn golden_sccp() {
    snapshot_pass("sccp", Sccp);
}

#[test]
fn golden_gvn() {
    snapshot_pass("gvn", Gvn);
}

#[test]
fn golden_simplifycfg() {
    snapshot_pass("simplifycfg", SimplifyCfg::default());
}

#[test]
fn golden_instsimplify() {
    snapshot_pass("instsimplify", InstSimplify);
}

#[test]
fn golden_ifconvert() {
    snapshot_pass("ifconvert", IfConvert);
}

#[test]
fn golden_condprop() {
    snapshot_pass("condprop", CondProp);
}

#[test]
fn golden_dce() {
    snapshot_pass("dce", Dce);
}

/// The meld subject: a loop whose body diamond branches on a
/// `threadIdx.x`-derived (divergent) condition, with one aligned
/// `gep`+`store` pair per arm, a multiplier the arms disagree on (melds
/// into a select), and a gap `add` only the false arm executes (gets
/// speculated). The uniform `subject()` above is useless for meld — its
/// diamonds never diverge — so the meld snapshots get their own fixture.
fn meld_subject() -> Function {
    let mut f = Function::new(
        "meld_subject",
        vec![
            Param::new("n", Type::I64),
            Param::new("x", Type::I64),
            Param::new("out", Type::Ptr),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let h = b.create_block();
    let body = b.create_block();
    let t = b.create_block();
    let e2 = b.create_block();
    let latch = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let tid = b.thread_idx();
    let tid64 = b.cast(CastOp::Sext, tid, Type::I64);
    let bit = b.and(tid64, Value::imm(1i64));
    let odd = b.icmp(ICmpPred::Ne, bit, Value::imm(0i64));
    b.br(h);
    b.switch_to(h);
    let i = b.phi(Type::I64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    let c = b.icmp(ICmpPred::Slt, i, Value::Arg(0));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    b.cond_br(odd, t, e2);
    b.switch_to(t);
    let x2 = b.mul(Value::Arg(1), Value::imm(2i64));
    let p1 = b.gep(Value::Arg(2), tid64, 8);
    b.store(p1, x2);
    b.br(latch);
    b.switch_to(e2);
    let x3 = b.mul(Value::Arg(1), Value::imm(3i64));
    let x31 = b.add(x3, Value::imm(1i64));
    let p2 = b.gep(Value::Arg(2), tid64, 8);
    b.store(p2, x31);
    b.br(latch);
    b.switch_to(latch);
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, latch, i1);
    b.br(h);
    b.switch_to(exit);
    b.ret(None);
    f
}

/// Meld before/after on the divergent subject: the diamond must meld into
/// a single predicated path (exactly one store, no divergent branch left).
#[test]
fn golden_meld_subject() {
    let f = meld_subject();
    uu_ir::verify_function(&f).unwrap();
    assert_golden("meld-subject-before", &f.to_string());
    let mut melded = f.clone();
    assert!(meld_function(&mut melded), "the divergent diamond must meld");
    uu_ir::verify_function(&melded).unwrap_or_else(|e| panic!("{e}\n{melded}"));
    assert_golden("meld-subject-after", &melded.to_string());
}

/// Meld before/after over every checked-in fuzz corpus seed: the exact IR
/// the pass sees and emits for each regression kernel, diffed byte-for-byte
/// against the snapshot.
#[test]
fn golden_meld_corpus() {
    let corpus = uu_check::corpus::load_corpus();
    assert!(corpus.len() >= 2, "regression corpus went missing");
    for (name, spec) in corpus {
        let f = uu_check::build_kernel(&spec);
        uu_ir::verify_function(&f).unwrap();
        assert_golden(&format!("meld-corpus-{name}-before"), &f.to_string());
        let mut melded = f.clone();
        meld_function(&mut melded);
        uu_ir::verify_function(&melded)
            .unwrap_or_else(|e| panic!("meld corrupted corpus {name}: {e}\n{melded}"));
        assert_golden(&format!("meld-corpus-{name}-after"), &melded.to_string());
    }
}

/// Snapshots must be reproducible within a process too — a pass whose
/// output depends on hash-map iteration order would make the golden files
/// flaky. Catch that directly.
#[test]
fn passes_are_deterministic() {
    for _ in 0..3 {
        let print = |mut pass: Box<dyn Pass>| {
            let mut f = transformed();
            pass.run(&mut f);
            f.to_string()
        };
        assert_eq!(print(Box::new(Sccp)), print(Box::new(Sccp)));
        assert_eq!(print(Box::new(Gvn)), print(Box::new(Gvn)));
        assert_eq!(
            print(Box::new(SimplifyCfg::default())),
            print(Box::new(SimplifyCfg::default()))
        );
        assert_eq!(print(Box::new(CondProp)), print(Box::new(CondProp)));
        assert_eq!(print(Box::new(Dce)), print(Box::new(Dce)));
        let print_meld = || {
            let mut f = meld_subject();
            Meld.run(&mut f);
            f.to_string()
        };
        assert_eq!(print_meld(), print_meld());
    }
}

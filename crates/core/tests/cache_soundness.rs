//! Soundness of the per-function [`AnalysisCache`] under the pipeline's
//! invalidation rule: *invalidate iff the invocation changed the function
//! and the pass does not preserve the CFG*. A stale dominator tree served
//! after a CFG-clobbering pass would silently mis-scope GVN and condprop,
//! so these tests pin the protocol down directly.

use uu_analysis::{AnalysisCache, DomTree};
use uu_core::opt::{condprop::CondProp, gvn::Gvn, simplifycfg::SimplifyCfg, Pass};
use uu_ir::{FunctionBuilder, ICmpPred, Param, Type, Value};

/// entry -> chooser -(c)-> {t | f} -> merge -> tail chain, with a
/// re-evaluated condition in the merge for GVN/condprop to chew on and an
/// empty forwarding block for simplifycfg to thread away.
fn build() -> uu_ir::Function {
    let mut f = uu_ir::Function::new(
        "k",
        vec![Param::new("x", Type::I64), Param::new("p", Type::Ptr)],
        Type::Void,
    );
    let e = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let t = b.create_block();
    let el = b.create_block();
    let fwd = b.create_block(); // empty forwarding block
    let m = b.create_block();
    b.switch_to(e);
    let c = b.icmp(ICmpPred::Sgt, Value::Arg(0), Value::imm(0i64));
    b.cond_br(c, t, el);
    b.switch_to(t);
    let v1 = b.add(Value::Arg(0), Value::imm(1i64));
    b.store(Value::Arg(1), v1);
    b.br(fwd);
    b.switch_to(fwd);
    b.br(m);
    b.switch_to(el);
    let v2 = b.add(Value::Arg(0), Value::imm(2i64));
    b.store(Value::Arg(1), v2);
    b.br(m);
    b.switch_to(m);
    let p = b.phi(Type::I64);
    b.add_phi_incoming(p, fwd, v1);
    b.add_phi_incoming(p, el, v2);
    // Re-evaluated condition: GVN unifies it with `c` from the entry.
    let c2 = b.icmp(ICmpPred::Sgt, Value::Arg(0), Value::imm(0i64));
    let s = b.select(c2, p, Value::imm(0i64));
    b.store(Value::Arg(1), s);
    b.ret(None);
    f
}

/// Drive one pass under the pipeline's rule, returning whether it changed.
fn drive(p: &mut dyn Pass, f: &mut uu_ir::Function, cache: &mut AnalysisCache) -> bool {
    let changed = p.run_with(f, cache);
    if changed && !p.preserves_cfg() {
        cache.invalidate();
    }
    changed
}

/// Every dominator fact the cache serves must match a from-scratch
/// recomputation on the current function.
fn assert_cache_fresh(f: &uu_ir::Function, cache: &mut AnalysisCache) {
    let cached = cache.dominators(f);
    let fresh = DomTree::compute(f);
    for &b in f.layout() {
        assert_eq!(
            cached.idom(b),
            fresh.idom(b),
            "stale idom for {b} (cached {:?}, fresh {:?})",
            cached.idom(b),
            fresh.idom(b)
        );
        assert_eq!(cached.is_reachable(b), fresh.is_reachable(b));
    }
    assert_eq!(cached.rpo(), fresh.rpo(), "stale RPO order");
}

#[test]
fn clobbering_pass_invalidates_and_recomputes() {
    let mut f = build();
    uu_ir::verify_function(&f).unwrap();
    let mut cache = AnalysisCache::new();
    // Prime the cache on the original CFG.
    let before = cache.dominators(&f);
    assert_eq!(cache.misses(), 1);
    // SimplifyCfg threads the empty forwarding block away: CFG changes.
    let changed = drive(&mut SimplifyCfg::default(), &mut f, &mut cache);
    assert!(changed, "simplifycfg should thread the forwarding block");
    uu_ir::verify_function(&f).unwrap();
    // The old tree knew the forwarding block; the cache must now serve a
    // tree for the *new* CFG, not the snapshot it had.
    assert_cache_fresh(&f, &mut cache);
    assert_eq!(cache.misses(), 2, "invalidation must force a recompute");
    // And the old handle still describes the old CFG (Rc snapshot), which
    // is exactly why handing out clones is safe across invalidation.
    assert!(before.rpo().len() > cache.dominators(&f).rpo().len());
}

#[test]
fn preserving_passes_reuse_without_staleness() {
    let mut f = build();
    let mut cache = AnalysisCache::new();
    cache.dominators(&f);
    assert_eq!(cache.misses(), 1);
    // GVN unifies the re-evaluated condition; condprop substitutes facts.
    // Both only rewrite instructions, so the cached tree stays valid and
    // must NOT be recomputed.
    drive(&mut Gvn, &mut f, &mut cache);
    drive(&mut CondProp, &mut f, &mut cache);
    uu_ir::verify_function(&f).unwrap();
    assert_eq!(cache.misses(), 1, "CFG-preserving passes must hit the cache");
    assert_cache_fresh(&f, &mut cache);
}

#[test]
fn unchanged_clobbering_pass_keeps_cache() {
    // A clobbering pass that reports no change leaves the CFG as the cache
    // saw it — by the rule, no invalidation, and the cache stays correct.
    let mut f = build();
    let mut cache = AnalysisCache::new();
    // First clobber for real, then re-run: the second run finds nothing.
    let _ = drive(&mut SimplifyCfg::default(), &mut f, &mut cache);
    cache.dominators(&f);
    let misses = cache.misses();
    let changed = drive(&mut SimplifyCfg::default(), &mut f, &mut cache);
    assert!(!changed, "second simplifycfg run should be a no-op");
    assert_eq!(cache.misses(), misses);
    assert_cache_fresh(&f, &mut cache);
}

#[test]
fn loop_forest_invalidates_with_the_tree() {
    let f = build();
    let mut cache = AnalysisCache::new();
    let lf = cache.loop_forest(&f);
    assert_eq!(lf.loops().len(), 0);
    let m_primed = cache.misses();
    // Repeat queries hit the cache.
    cache.loop_forest(&f);
    cache.dominators(&f);
    assert_eq!(cache.misses(), m_primed);
    // invalidate drops BOTH analyses: the next queries recompute.
    cache.invalidate();
    cache.dominators(&f);
    cache.loop_forest(&f);
    assert_eq!(cache.misses(), m_primed + 2, "both analyses must recompute");
}

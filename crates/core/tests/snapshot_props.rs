//! Property: the journal-based delta snapshot restores a function *exactly*
//! — byte-for-byte against a full pre-clone — no matter which pass mutated
//! it in between. This is the rollback contract the guarded pipeline runner
//! relies on under `UU_FAULT` injection, checked here against the real
//! optimization passes over randomized kernels.

use uu_check::{build_kernel, check, Config, KernelSpec};
use uu_core::opt::{
    condprop::CondProp, dce::Dce, gvn::Gvn, instsimplify::InstSimplify, sccp::Sccp,
    simplifycfg::SimplifyCfg, Pass,
};

/// Run every cleanup pass over a snapshot-armed copy of the kernel and roll
/// each one back; the function must print identically to the pristine
/// original after every rollback.
#[test]
fn snapshot_rollback_restores_exactly() {
    check(
        "snapshot_rollback_restores_exactly",
        &Config::from_env(48),
        |spec: &KernelSpec| {
            let pristine = build_kernel(spec);
            let reference = pristine.to_string();
            let passes: Vec<Box<dyn Pass>> = vec![
                Box::new(SimplifyCfg::default()),
                Box::new(InstSimplify),
                Box::new(Sccp),
                Box::new(Gvn),
                Box::new(CondProp),
                Box::new(Dce),
            ];
            for mut p in passes {
                let mut f = pristine.clone();
                f.snapshot_begin();
                let changed = p.run(&mut f);
                f.snapshot_rollback();
                if f.to_string() != reference {
                    return Err(format!(
                        "rollback after {} (changed={changed}) did not restore the \
                         function.\nexpected:\n{reference}\ngot:\n{f}",
                        p.name()
                    ));
                }
                // The journal must also be reusable: a second arm/commit
                // cycle on the same function keeps the mutation.
                f.snapshot_begin();
                let changed2 = p.run(&mut f);
                f.snapshot_commit();
                let committed = f.to_string();
                if changed2 && committed == reference {
                    return Err(format!(
                        "{} reported a change but committed IR is unchanged",
                        p.name()
                    ));
                }
                uu_ir::verify_function(&f)
                    .map_err(|e| format!("{} broke the IR after commit: {e}\n{f}", p.name()))?;
            }
            Ok(())
        },
    );
}

/// Rollback after a *sequence* of passes (compound mutation within one
/// snapshot) must also restore exactly — the journal coalesces per-entity
/// pre-images, not per-pass ones.
#[test]
fn snapshot_rollback_spans_multiple_passes() {
    check(
        "snapshot_rollback_spans_multiple_passes",
        &Config::from_env(48),
        |spec: &KernelSpec| {
            let pristine = build_kernel(spec);
            let reference = pristine.to_string();
            let mut f = pristine.clone();
            f.snapshot_begin();
            let _ = SimplifyCfg::default().run(&mut f);
            let _ = InstSimplify.run(&mut f);
            let _ = Sccp.run(&mut f);
            let _ = Dce.run(&mut f);
            f.snapshot_rollback();
            if f.to_string() != reference {
                return Err(format!(
                    "compound rollback did not restore.\nexpected:\n{reference}\ngot:\n{f}"
                ));
            }
            Ok(())
        },
    );
}

//! Integration-test package for the `uu` workspace; see the `[[test]]`
//! targets (`cross_crate`, `properties`, `paper_claims`).

//! Cross-layer determinism of the parallel execution engine.
//!
//! The tentpole guarantee of the `uu-par` fan-out (see DESIGN.md "Parallel
//! execution"): every report artifact — sweep figures, fuzz failure
//! reports, corpus verdicts — is **byte-identical** whether produced
//! serially (`UU_JOBS=1`), with a small pool (`UU_JOBS=4`), or at the
//! machine default. These tests drive the real sweep and the real oracle
//! with explicit worker counts (not the env knob, so they cannot race
//! other tests) and diff the bytes.

use std::path::Path;
use uu_check::{check_result, Config, DiffOracle, KernelSpec};
use uu_harness::{figures, study, sweep};
use uu_kernels::all_benchmarks;

fn job_counts() -> Vec<usize> {
    let mut jobs = vec![1, 4];
    let default = uu_par::num_jobs();
    if !jobs.contains(&default) {
        jobs.push(default);
    }
    jobs
}

/// Render every figure/table for a sweep into a fresh directory and
/// return `(file name, bytes)` pairs sorted by name.
fn render_all(s: &sweep::Sweep, benches: &[uu_kernels::Benchmark], dir: &Path) -> Vec<(String, Vec<u8>)> {
    std::fs::create_dir_all(dir).unwrap();
    figures::table1(s, dir, benches).unwrap();
    figures::fig6(s, dir).unwrap();
    figures::fig7(s, dir).unwrap();
    figures::fig8(s, dir).unwrap();
    figures::faults(s, dir).unwrap();
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let p = e.unwrap().path();
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&p).unwrap(),
            )
        })
        .collect();
    out.sort();
    std::fs::remove_dir_all(dir).ok();
    out
}

#[test]
fn sweep_reports_are_byte_identical_at_any_worker_count() {
    let benches: Vec<_> = all_benchmarks()
        .into_iter()
        .filter(|b| b.info.name == "mandelbrot")
        .collect();
    let tmp = std::env::temp_dir().join(format!("uu-par-det-{}", std::process::id()));
    let mut reference: Option<(usize, Vec<(String, Vec<u8>)>)> = None;
    for jobs in job_counts() {
        let s = sweep::run_sweep_jobs(&benches, true, jobs);
        let files = render_all(&s, &benches, &tmp.join(format!("j{jobs}")));
        assert!(!files.is_empty(), "sweep produced no report files");
        match &reference {
            None => reference = Some((jobs, files)),
            Some((ref_jobs, ref_files)) => {
                assert_eq!(
                    ref_files.len(),
                    files.len(),
                    "file sets differ between jobs={ref_jobs} and jobs={jobs}"
                );
                for ((an, ab), (bn, bb)) in ref_files.iter().zip(&files) {
                    assert_eq!(an, bn, "file names diverged");
                    assert_eq!(
                        ab, bb,
                        "{an}: bytes differ between jobs={ref_jobs} and jobs={jobs}"
                    );
                }
            }
        }
    }
}

/// Render the three-way study figure and table into a fresh directory and
/// return `(file name, bytes)` pairs sorted by name.
fn render_study(st: &study::Study, dir: &Path) -> Vec<(String, Vec<u8>)> {
    std::fs::create_dir_all(dir).unwrap();
    figures::fig9(st, dir).unwrap();
    figures::table2(st, dir).unwrap();
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let p = e.unwrap().path();
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&p).unwrap(),
            )
        })
        .collect();
    out.sort();
    std::fs::remove_dir_all(dir).ok();
    out
}

#[test]
fn study_reports_are_byte_identical_at_any_worker_count() {
    // The three-way unmerge/meld study (fig9 + table2) carries the same
    // guarantee as the sweep: one flat task list, per-point noise seeds, and
    // an in-order merge, so worker count can never leak into the bytes.
    let benches: Vec<_> = all_benchmarks()
        .into_iter()
        .filter(|b| b.info.name == "mandelbrot")
        .collect();
    let tmp = std::env::temp_dir().join(format!("uu-study-det-{}", std::process::id()));
    let mut reference: Option<(usize, Vec<(String, Vec<u8>)>)> = None;
    for jobs in job_counts() {
        let st = study::run_study_jobs(&benches, jobs);
        let files = render_study(&st, &tmp.join(format!("j{jobs}")));
        assert!(
            files.iter().any(|(n, _)| n == "fig9.csv"),
            "study produced no fig9.csv"
        );
        assert!(
            files.iter().any(|(n, _)| n == "table2.csv"),
            "study produced no table2.csv"
        );
        match &reference {
            None => reference = Some((jobs, files)),
            Some((ref_jobs, ref_files)) => {
                assert_eq!(
                    ref_files.len(),
                    files.len(),
                    "file sets differ between jobs={ref_jobs} and jobs={jobs}"
                );
                for ((an, ab), (bn, bb)) in ref_files.iter().zip(&files) {
                    assert_eq!(an, bn, "file names diverged");
                    assert_eq!(
                        ab, bb,
                        "{an}: bytes differ between jobs={ref_jobs} and jobs={jobs}"
                    );
                }
            }
        }
    }
}

#[test]
fn fuzz_failure_reports_are_byte_identical_at_any_worker_count() {
    // An injected spec-level failure (no compilation needed, so the scan
    // covers many cases quickly). The full Display of the shrunk Failure —
    // case index, case seed, original, shrunk, error — must not depend on
    // scheduling, for either master seed.
    for seed in [uu_check::runner::DEFAULT_SEED, 0xDECAF] {
        let run = |jobs: usize| {
            let cfg = Config {
                seed,
                jobs,
                cases: 64,
                ..Config::new(64)
            };
            let f = check_result::<KernelSpec, _>("injected", &cfg, |s| {
                if s.bound % 2 == 1 {
                    Err(format!("injected: odd bound {}", s.bound))
                } else {
                    Ok(())
                }
            })
            .expect_err("odd bounds are common; 64 cases must hit one");
            format!("{f}")
        };
        let serial = run(1);
        for jobs in job_counts().into_iter().skip(1) {
            assert_eq!(
                serial,
                run(jobs),
                "failure report diverged at jobs={jobs}, seed {seed:#x}"
            );
        }
    }
}

#[test]
fn corpus_replay_verdicts_match_across_worker_counts() {
    // The real differential oracle over the checked-in corpus, fanned out
    // exactly like `uu-fuzz` phase 1: the rendered verdict block is the
    // same text at any worker count.
    let oracle = DiffOracle::default();
    let corpus = uu_check::corpus::load_corpus();
    assert!(corpus.len() >= 2, "regression corpus went missing");
    let render = |jobs: usize| -> String {
        let verdicts = uu_par::par_map_jobs(jobs, &corpus, |_, (name, spec)| {
            match oracle.check_spec(spec) {
                Ok(()) => format!("corpus {name}: ok\n"),
                Err(e) => format!("corpus {name}: FAILED\n{e}\n"),
            }
        });
        verdicts.concat()
    };
    let serial = render(1);
    for jobs in job_counts().into_iter().skip(1) {
        assert_eq!(serial, render(jobs), "corpus verdicts diverged at jobs={jobs}");
    }
}

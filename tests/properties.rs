//! Property-based differential testing of the whole compiler stack.
//!
//! Random loop kernels are generated (random arithmetic bodies, optional
//! diamonds/triangles, random trip counts), compiled under every pipeline
//! configuration, and executed on the SIMT simulator. Every configuration
//! must produce bit-identical output memory — any divergence is a
//! miscompilation in the transforms or the cleanup optimizer.

use proptest::prelude::*;
use uu_core::{compile, HeuristicOptions, LoopFilter, PipelineOptions, Transform, UnmergeOptions};
use uu_ir::{
    Function, FunctionBuilder, ICmpPred, Module, Param, Type, Value,
};
use uu_simt::{Gpu, KernelArg, LaunchConfig};

/// A recipe for one random loop kernel.
#[derive(Debug, Clone)]
struct KernelSpec {
    /// Loop bound (runtime value, 0..=24).
    bound: i64,
    /// Ops in the always-executed part of the body.
    straight_ops: Vec<(u8, u8, u8)>,
    /// Ops in the conditional arm (empty = no branch).
    arm_ops: Vec<(u8, u8, u8)>,
    /// Second conditional region (diamond) ops.
    else_ops: Vec<(u8, u8, u8)>,
    /// Which value the branch condition compares against the counter.
    cond_sel: u8,
    /// Whether the condition uses the thread id (divergent).
    divergent: bool,
    /// Per-thread input values.
    input_a: i64,
    /// When > 0, wrap the straight-line ops in an inner counted loop of
    /// this trip count (exercises the loop-nest / super-node machinery).
    inner_trip: u8,
}

fn op_strategy() -> impl Strategy<Value = (u8, u8, u8)> {
    (0u8..8, 0u8..4, 0u8..4)
}

fn spec_strategy() -> impl Strategy<Value = KernelSpec> {
    (
        0i64..=24,
        proptest::collection::vec(op_strategy(), 1..5),
        proptest::collection::vec(op_strategy(), 0..4),
        proptest::collection::vec(op_strategy(), 0..3),
        0u8..4,
        any::<bool>(),
        -10i64..10,
        0u8..4,
    )
        .prop_map(
            |(bound, straight_ops, arm_ops, else_ops, cond_sel, divergent, input_a, inner_trip)| {
                KernelSpec {
                    bound,
                    straight_ops,
                    arm_ops,
                    else_ops,
                    cond_sel,
                    divergent,
                    input_a,
                    inner_trip,
                }
            },
        )
}

fn apply_op(
    b: &mut FunctionBuilder<'_>,
    (op, l, r): (u8, u8, u8),
    pool: &mut Vec<Value>,
) {
    let lhs = pool[l as usize % pool.len()];
    let rhs = pool[r as usize % pool.len()];
    let v = match op % 8 {
        0 => b.add(lhs, rhs),
        1 => b.sub(lhs, rhs),
        2 => b.mul(lhs, rhs),
        3 => b.xor(lhs, rhs),
        4 => b.and(lhs, rhs),
        5 => b.or(lhs, rhs),
        6 => {
            let sh = b.and(rhs, Value::imm(7i64));
            b.shl(lhs, sh)
        }
        _ => {
            let sh = b.and(rhs, Value::imm(7i64));
            b.ashr(lhs, sh)
        }
    };
    pool.push(v);
}

/// Build the kernel for a spec: a while-loop whose body applies the ops,
/// with an optional diamond, accumulating into an `i64` per thread.
fn build_kernel(spec: &KernelSpec) -> Function {
    let mut f = Function::new(
        "prop_kernel",
        vec![
            Param::new("out", Type::Ptr),
            Param::new("n", Type::I64),
            Param::new("a", Type::I64),
        ],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64);
    let acc = b.phi(Type::I64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(acc, entry, Value::Arg(2));
    let c = b.icmp(ICmpPred::Slt, i, Value::Arg(1));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let mut pool = vec![i, acc, Value::Arg(2), Value::imm(3i64)];
    let straight_result = if spec.inner_trip > 0 {
        // Inner counted loop applying the ops repeatedly: the outer u&u
        // must treat it as an indivisible super-node.
        let ih = b.create_block();
        let ibody = b.create_block();
        let iexit = b.create_block();
        let entry_of_inner = b.current();
        b.br(ih);
        b.switch_to(ih);
        let j = b.phi(Type::I64);
        let iv = b.phi(Type::I64);
        b.add_phi_incoming(j, entry_of_inner, Value::imm(0i64));
        b.add_phi_incoming(iv, entry_of_inner, acc);
        let ic = b.icmp(ICmpPred::Slt, j, Value::imm(spec.inner_trip as i64));
        b.cond_br(ic, ibody, iexit);
        b.switch_to(ibody);
        let mut ipool = pool.clone();
        ipool.push(iv);
        for op in &spec.straight_ops {
            apply_op(&mut b, *op, &mut ipool);
        }
        let next_iv = *ipool.last().unwrap();
        let j1 = b.add(j, Value::imm(1i64));
        b.add_phi_incoming(j, ibody, j1);
        b.add_phi_incoming(iv, ibody, next_iv);
        b.br(ih);
        b.switch_to(iexit);
        // LCSSA-style hand-off out of the inner loop.
        let out = b.phi(Type::I64);
        b.add_phi_incoming(out, ih, iv);
        pool.push(out);
        out
    } else {
        for op in &spec.straight_ops {
            apply_op(&mut b, *op, &mut pool);
        }
        *pool.last().unwrap()
    };

    let latch = b.create_block();
    let (acc_next, i_from) = if spec.arm_ops.is_empty() {
        // No branch: straight to latch.
        b.br(latch);
        b.switch_to(latch);
        (straight_result, latch)
    } else {
        let arm = b.create_block();
        let other = b.create_block();
        let cond_lhs = if spec.divergent {
            gid
        } else {
            pool[spec.cond_sel as usize % pool.len()]
        };
        let masked = b.and(cond_lhs, Value::imm(3i64));
        let cc = b.icmp(ICmpPred::Ne, masked, Value::imm(0i64));
        b.cond_br(cc, arm, other);
        b.switch_to(arm);
        let mut arm_pool = pool.clone();
        for op in &spec.arm_ops {
            apply_op(&mut b, *op, &mut arm_pool);
        }
        let arm_v = *arm_pool.last().unwrap();
        b.br(latch);
        b.switch_to(other);
        let mut else_pool = pool.clone();
        for op in &spec.else_ops {
            apply_op(&mut b, *op, &mut else_pool);
        }
        let else_v = *else_pool.last().unwrap();
        b.br(latch);
        b.switch_to(latch);
        let m = b.phi(Type::I64);
        b.add_phi_incoming(m, arm, arm_v);
        b.add_phi_incoming(m, other, else_v);
        (m, latch)
    };
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, i_from, i1);
    b.add_phi_incoming(acc, i_from, acc_next);
    b.br(header);
    b.switch_to(exit);
    let po = b.gep(Value::Arg(0), gid, 8);
    b.store(po, acc);
    b.ret(None);
    f
}

fn execute(f: &Function, spec: &KernelSpec) -> Vec<i64> {
    let mut gpu = Gpu::new();
    let out = gpu.mem.alloc_i64(&vec![0i64; 32]).unwrap();
    gpu.launch(
        f,
        LaunchConfig::new(1, 32),
        &[
            KernelArg::Buffer(out),
            KernelArg::I64(spec.bound),
            KernelArg::I64(spec.input_a),
        ],
    )
    .unwrap_or_else(|e| panic!("exec failed: {e}\n{f}"));
    gpu.mem.read_i64(out)
}

fn configs() -> Vec<Transform> {
    vec![
        Transform::Baseline,
        Transform::Unroll { factor: 3 },
        Transform::Unmerge,
        Transform::Uu {
            factor: 2,
            unmerge: UnmergeOptions::default(),
        },
        Transform::Uu {
            factor: 5,
            unmerge: UnmergeOptions::default(),
        },
        Transform::UuHeuristic(HeuristicOptions::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    /// Every pipeline configuration preserves the semantics of random loop
    /// kernels, and produces verifier-clean IR.
    #[test]
    fn all_configs_preserve_semantics(spec in spec_strategy()) {
        let kernel = build_kernel(&spec);
        uu_ir::verify_function(&kernel).expect("generator produced invalid IR");
        let golden = execute(&kernel, &spec);
        for t in configs() {
            let mut m = Module::new("prop");
            let id = m.add_function(kernel.clone());
            let label = format!("{t:?}");
            compile(&mut m, &PipelineOptions {
                transform: t,
                filter: LoopFilter::All,
                ..Default::default()
            });
            uu_ir::verify_module(&m)
                .unwrap_or_else(|e| panic!("invalid IR after {label}: {e}"));
            let got = execute(m.function(id), &spec);
            prop_assert_eq!(&got, &golden, "config {} diverged", label);
        }
    }

    /// The raw transforms (without cleanup) are themselves
    /// semantics-preserving.
    #[test]
    fn raw_uu_preserves_semantics(spec in spec_strategy(), factor in 2u32..6) {
        let kernel = build_kernel(&spec);
        let golden = execute(&kernel, &spec);
        let mut transformed = kernel.clone();
        let dom = uu_analysis::DomTree::compute(&transformed);
        let forest = uu_analysis::LoopForest::compute(&transformed, &dom);
        if let Some(l) = forest.loops().first().cloned() {
            uu_core::uu_loop(&mut transformed, l.header, &uu_core::UuOptions {
                factor,
                ..Default::default()
            });
            uu_ir::verify_function(&transformed)
                .unwrap_or_else(|e| panic!("invalid IR after raw u&u: {e}"));
        }
        let got = execute(&transformed, &spec);
        prop_assert_eq!(&got, &golden);
    }

    /// The textual printer and parser round-trip on generated kernels: one
    /// parse normalizes instruction numbering; after that, print∘parse is
    /// the identity, and semantics are preserved throughout.
    #[test]
    fn printer_parser_roundtrip(spec in spec_strategy()) {
        let kernel = build_kernel(&spec);
        let printed = kernel.to_string();
        let reparsed = uu_ir::parse_function(&printed)
            .unwrap_or_else(|e| panic!("{e}\n{printed}"));
        uu_ir::verify_function(&reparsed)
            .unwrap_or_else(|e| panic!("reparsed invalid: {e}"));
        let normalized = reparsed.to_string();
        let again = uu_ir::parse_function(&normalized)
            .unwrap_or_else(|e| panic!("{e}\n{normalized}"));
        prop_assert_eq!(again.to_string(), normalized, "round-trip not idempotent");
        // And the reparsed kernel executes identically.
        let golden = execute(&kernel, &spec);
        prop_assert_eq!(execute(&reparsed, &spec), golden.clone());
        prop_assert_eq!(execute(&again, &spec), golden);
    }

    /// Runtime unrolling alone preserves semantics.
    #[test]
    fn raw_runtime_unroll_preserves_semantics(spec in spec_strategy(), factor in 2u32..6) {
        let kernel = build_kernel(&spec);
        let golden = execute(&kernel, &spec);
        let mut transformed = kernel.clone();
        let dom = uu_analysis::DomTree::compute(&transformed);
        let forest = uu_analysis::LoopForest::compute(&transformed, &dom);
        if let Some(l) = forest.loops().first().cloned() {
            uu_core::runtime_unroll::runtime_unroll(
                &mut transformed, l.header, &l.blocks, &l.latches, factor);
            uu_ir::verify_function(&transformed)
                .unwrap_or_else(|e| panic!("invalid IR after runtime unroll: {e}"));
        }
        let got = execute(&transformed, &spec);
        prop_assert_eq!(&got, &golden);
    }
}

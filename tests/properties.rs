//! Property-based differential testing of the whole compiler stack.
//!
//! Random loop kernels are generated (random arithmetic bodies, optional
//! diamonds/triangles, random trip counts), compiled under every pipeline
//! configuration, and executed on the SIMT simulator. Every configuration
//! must produce bit-identical output memory — any divergence is a
//! miscompilation in the transforms or the cleanup optimizer.
//!
//! Generation, shrinking and the oracle live in `uu-check`
//! (`crates/check`); this file wires them to the runner. Case counts are
//! deliberately modest for the default `cargo test`; CI's fuzz smoke raises
//! them with `UU_CHECK_CASES` (see `ci.sh`), and any failure prints a
//! shrunk spec in the corpus format ready to check in under
//! `crates/check/corpus/`.

use uu_check::{build_kernel, check, execute, Config, DiffOracle, Gen, KernelSpec, Rng};

/// Replay the checked-in regression corpus through the full oracle before
/// any novel fuzzing. Historical counterexamples keep running forever.
#[test]
fn corpus_replays_clean() {
    let oracle = DiffOracle::default();
    let corpus = uu_check::corpus::load_corpus();
    assert!(corpus.len() >= 2, "regression corpus went missing");
    for (name, spec) in corpus {
        oracle
            .check_spec(&spec)
            .unwrap_or_else(|e| panic!("corpus entry {name} regressed: {e}"));
    }
}

/// Every pipeline configuration preserves the semantics of random loop
/// kernels, and produces verifier-clean IR.
#[test]
fn all_configs_preserve_semantics() {
    let oracle = DiffOracle::default();
    check(
        "all_configs_preserve_semantics",
        &Config::from_env(48),
        |spec: &KernelSpec| oracle.check_spec(spec),
    );
}

/// A spec paired with an unroll factor in 2..6, for the raw-transform
/// properties.
#[derive(Debug, Clone)]
struct SpecWithFactor {
    spec: KernelSpec,
    factor: u32,
}

impl Gen for SpecWithFactor {
    fn generate(rng: &mut Rng) -> Self {
        SpecWithFactor {
            spec: KernelSpec::generate(rng),
            factor: rng.gen_range_u64(2, 6) as u32,
        }
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .spec
            .shrink()
            .into_iter()
            .map(|spec| SpecWithFactor {
                spec,
                factor: self.factor,
            })
            .collect();
        if self.factor > 2 {
            out.push(SpecWithFactor {
                spec: self.spec.clone(),
                factor: 2,
            });
        }
        out
    }
}

/// The raw transforms (without cleanup) are themselves
/// semantics-preserving.
#[test]
fn raw_uu_preserves_semantics() {
    check(
        "raw_uu_preserves_semantics",
        &Config::from_env(48),
        |sf: &SpecWithFactor| {
            let kernel = build_kernel(&sf.spec);
            let golden = execute(&kernel, &sf.spec)?;
            let mut transformed = kernel.clone();
            let dom = uu_analysis::DomTree::compute(&transformed);
            let forest = uu_analysis::LoopForest::compute(&transformed, &dom);
            if let Some(l) = forest.loops().first().cloned() {
                uu_core::uu_loop(
                    &mut transformed,
                    l.header,
                    &uu_core::UuOptions {
                        factor: sf.factor,
                        ..Default::default()
                    },
                );
                uu_ir::verify_function(&transformed)
                    .map_err(|e| format!("invalid IR after raw u&u: {e}"))?;
            }
            let got = execute(&transformed, &sf.spec)?;
            if got == golden {
                Ok(())
            } else {
                Err(format!(
                    "raw u&u (factor {}) diverged\n  want: {golden:?}\n  got:  {got:?}",
                    sf.factor
                ))
            }
        },
    );
}

/// Runtime unrolling alone preserves semantics.
#[test]
fn raw_runtime_unroll_preserves_semantics() {
    check(
        "raw_runtime_unroll_preserves_semantics",
        &Config::from_env(48),
        |sf: &SpecWithFactor| {
            let kernel = build_kernel(&sf.spec);
            let golden = execute(&kernel, &sf.spec)?;
            let mut transformed = kernel.clone();
            let dom = uu_analysis::DomTree::compute(&transformed);
            let forest = uu_analysis::LoopForest::compute(&transformed, &dom);
            if let Some(l) = forest.loops().first().cloned() {
                uu_core::runtime_unroll::runtime_unroll(
                    &mut transformed,
                    l.header,
                    &l.blocks,
                    &l.latches,
                    sf.factor,
                );
                uu_ir::verify_function(&transformed)
                    .map_err(|e| format!("invalid IR after runtime unroll: {e}"))?;
            }
            let got = execute(&transformed, &sf.spec)?;
            if got == golden {
                Ok(())
            } else {
                Err(format!(
                    "runtime unroll (factor {}) diverged\n  want: {golden:?}\n  got:  {got:?}",
                    sf.factor
                ))
            }
        },
    );
}

/// The raw meld transform (without cleanup) preserves semantics, emits
/// verifier-clean IR, and preserves the structural invariants the rest of
/// the stack depends on.
#[test]
fn raw_meld_preserves_semantics() {
    check(
        "raw_meld_preserves_semantics",
        &Config::from_env(48),
        |spec: &KernelSpec| {
            let kernel = build_kernel(spec);
            let golden = execute(&kernel, spec)?;
            let mut melded = kernel.clone();
            uu_core::meld_function(&mut melded);
            uu_ir::verify_function(&melded)
                .map_err(|e| format!("invalid IR after raw meld: {e}\n{melded}"))?;
            let got = execute(&melded, spec)?;
            if got == golden {
                Ok(())
            } else {
                Err(format!(
                    "raw meld diverged\n  want: {golden:?}\n  got:  {got:?}"
                ))
            }
        },
    );
}

/// Melding preserves the analysis invariants it claims to: dominance is
/// recomputable (no orphaned blocks), the convergent-instruction count is
/// untouched, and the number of *divergent* conditional branches reported
/// by `uu_analysis::Divergence` never increases — reducing them is the
/// pass's entire purpose.
#[test]
fn meld_preserves_divergence_and_convergence_invariants() {
    fn divergent_branches(f: &uu_ir::Function) -> usize {
        let div = uu_analysis::Divergence::compute(f);
        f.iter_insts()
            .filter(|(_, i)| match i.kind {
                uu_ir::InstKind::CondBr { cond, .. } => div.is_divergent(cond),
                _ => false,
            })
            .count()
    }
    fn convergent_insts(f: &uu_ir::Function) -> usize {
        f.iter_insts().filter(|(_, i)| i.kind.is_convergent()).count()
    }
    check(
        "meld_preserves_divergence_and_convergence_invariants",
        &Config::from_env(48),
        |spec: &KernelSpec| {
            let kernel = build_kernel(spec);
            let before_div = divergent_branches(&kernel);
            let before_conv = convergent_insts(&kernel);
            let mut melded = kernel.clone();
            uu_core::meld_function(&mut melded);
            uu_ir::verify_function(&melded)
                .map_err(|e| format!("invalid IR after meld: {e}"))?;
            // Dominance must be recomputable over a coherent CFG: every
            // reachable block is in the layout and entry dominates all.
            let dom = uu_analysis::DomTree::compute(&melded);
            for b in melded.reachable_blocks() {
                if !dom.dominates(melded.entry(), b) {
                    return Err(format!("entry no longer dominates {b} after meld"));
                }
            }
            let after_div = divergent_branches(&melded);
            if after_div > before_div {
                return Err(format!(
                    "meld increased divergent branches: {before_div} -> {after_div}"
                ));
            }
            if convergent_insts(&melded) != before_conv {
                return Err(format!(
                    "meld changed the convergent-instruction count: {before_conv} -> {}",
                    convergent_insts(&melded)
                ));
            }
            Ok(())
        },
    );
}

/// The textual printer and parser round-trip on generated kernels: one
/// parse normalizes instruction numbering; after that, print∘parse is
/// the identity, and semantics are preserved throughout.
#[test]
fn printer_parser_roundtrip() {
    check(
        "printer_parser_roundtrip",
        &Config::from_env(48),
        |spec: &KernelSpec| {
            let kernel = build_kernel(spec);
            let printed = kernel.to_string();
            let reparsed =
                uu_ir::parse_function(&printed).map_err(|e| format!("{e}\n{printed}"))?;
            uu_ir::verify_function(&reparsed).map_err(|e| format!("reparsed invalid: {e}"))?;
            let normalized = reparsed.to_string();
            let again =
                uu_ir::parse_function(&normalized).map_err(|e| format!("{e}\n{normalized}"))?;
            if again.to_string() != normalized {
                return Err("round-trip not idempotent".to_string());
            }
            // And the reparsed kernel executes identically.
            let golden = execute(&kernel, spec)?;
            if execute(&reparsed, spec)? != golden || execute(&again, spec)? != golden {
                return Err("reparsed kernel diverged from original".to_string());
            }
            Ok(())
        },
    );
}

//! Fault-injection containment across the whole stack.
//!
//! The tentpole guarantee of the crash-recovery layer (see DESIGN.md
//! "Fault tolerance & crash recovery"): a deterministic fault injected at
//! *any* pass invocation — a panic, verifier-detectable corruption, a
//! silent miscompile, work-budget exhaustion, or a simulated memory fault —
//! is contained by the guarded pass runner, diagnosed in the sweep output,
//! and never aborts the run or poisons the report. And because every
//! degradation decision is a pure function of the point, faulted sweeps
//! stay byte-identical at any worker count.

use std::path::Path;
use uu_core::{FaultPlan, Rung};
use uu_harness::{figures, sweep};
use uu_kernels::all_benchmarks;

/// The seeded fault matrix: every fault kind, spread over early/mid/late
/// pass indices (and, for memory faults, access counts), with distinct
/// seeds. Specs use the `UU_FAULT` grammar so the test also locks the
/// parser to the documented surface.
const FAULT_MATRIX: &[&str] = &[
    "panic@0:1",
    "panic@3:2",
    "panic@11:3",
    "corrupt@1:4",
    "corrupt@6:5",
    "miscompile@2:6",
    "miscompile@8:7",
    "exhaust@4:8",
    "mem@25:9",
    "mem@400:10",
];

fn small_bench_set() -> Vec<uu_kernels::Benchmark> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.info.name == "mandelbrot" || b.info.name == "ccs")
        .collect()
}

/// Render every sweep artifact (including the fault report) into `dir` and
/// return `(file name, bytes)` pairs sorted by name.
fn render_all(s: &sweep::Sweep, benches: &[uu_kernels::Benchmark], dir: &Path) -> Vec<(String, Vec<u8>)> {
    std::fs::create_dir_all(dir).unwrap();
    figures::table1(s, dir, benches).unwrap();
    figures::fig6(s, dir).unwrap();
    figures::fig7(s, dir).unwrap();
    figures::fig8(s, dir).unwrap();
    figures::faults(s, dir).unwrap();
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let p = e.unwrap().path();
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&p).unwrap(),
            )
        })
        .collect();
    out.sort();
    std::fs::remove_dir_all(dir).ok();
    out
}

/// Property: for every fault in the matrix, the sweep completes, every
/// point lands on a valid rung, at least one point records the fault in
/// its diagnostics, and every report artifact still renders.
#[test]
fn every_injected_fault_is_contained_and_diagnosed() {
    let benches = small_bench_set();
    let tmp = std::env::temp_dir().join(format!("uu-fault-prop-{}", std::process::id()));
    for spec in FAULT_MATRIX {
        let fault = FaultPlan::parse(spec).unwrap();
        // Round-trip: the rendered spec (which normalizes seeds to hex)
        // parses back to the same plan.
        assert_eq!(FaultPlan::parse(&fault.spec()), Ok(fault), "spec round-trip");
        // Containment: the sweep must not panic or abort.
        let s = sweep::run_sweep_faulted(&benches, true, 2, Some(fault));
        assert_eq!(s.apps.len(), benches.len(), "{spec}: an app vanished");
        assert!(!s.points.is_empty(), "{spec}: sweep produced no points");
        // Diagnosis: the fault leaves a trace somewhere — a non-Full rung
        // or a recorded diagnostic on a point or app summary. (A fault
        // index past a given compile's pass count legitimately leaves that
        // *point* clean; the matrix indices are chosen to hit at least one
        // compile per spec.)
        let touched = s
            .points
            .iter()
            .map(|p| (p.rung, p.diag.as_str()))
            .chain(s.apps.iter().map(|a| (a.heuristic.rung, a.diag.as_str())))
            .chain(s.apps.iter().map(|a| (a.baseline.rung, a.baseline.diag.as_str())))
            .any(|(rung, diag)| rung != Rung::Full || !diag.is_empty());
        assert!(touched, "{spec}: fault left no trace in any rung or diagnostic");
        // Renderability: every artifact writes cleanly.
        let files = render_all(&s, &benches, &tmp.join("render"));
        assert!(
            files.iter().any(|(n, _)| n == "faults.csv"),
            "{spec}: fault report missing"
        );
        let ftxt = files
            .iter()
            .find(|(n, _)| n == "faults.txt")
            .map(|(_, b)| String::from_utf8_lossy(b).into_owned())
            .unwrap();
        assert!(
            !ftxt.contains("all points compiled and ran cleanly"),
            "{spec}: fault report claims a clean run"
        );
    }
}

/// A faulted sweep is as deterministic as a clean one: the same fault plan
/// at `jobs = 1` and `jobs = 4` produces byte-identical reports.
#[test]
fn faulted_sweeps_are_byte_identical_across_worker_counts() {
    let benches = small_bench_set();
    let tmp = std::env::temp_dir().join(format!("uu-fault-det-{}", std::process::id()));
    for spec in ["panic@3:2", "miscompile@2:6", "mem@25:9"] {
        let fault = Some(FaultPlan::parse(spec).unwrap());
        let serial = render_all(
            &sweep::run_sweep_faulted(&benches, true, 1, fault),
            &benches,
            &tmp.join("j1"),
        );
        let pooled = render_all(
            &sweep::run_sweep_faulted(&benches, true, 4, fault),
            &benches,
            &tmp.join("j4"),
        );
        assert_eq!(serial.len(), pooled.len(), "{spec}: file sets differ");
        for ((an, ab), (bn, bb)) in serial.iter().zip(&pooled) {
            assert_eq!(an, bn, "{spec}: file names diverged");
            assert_eq!(ab, bb, "{spec}: {an} bytes differ between jobs=1 and jobs=4");
        }
    }
}

/// Malformed `UU_FAULT` specs are rejected with a message naming the
/// grammar, not silently ignored.
#[test]
fn malformed_fault_specs_are_rejected() {
    for bad in ["", "panic", "panic@", "panic@x", "typo@3", "panic@3:z", "@3"] {
        assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
    }
}

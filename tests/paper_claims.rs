//! The paper's headline qualitative claims, asserted against the simulated
//! reproduction. These test *shapes* — who wins, in which direction —
//! never absolute numbers (see EXPERIMENTS.md for the quantitative
//! comparison).

use uu_core::{LoopFilter, Transform, UnmergeOptions};
use uu_harness::{measure, measure_baseline, Measurement};
use uu_kernels::{all_benchmarks, Benchmark};

fn bench(name: &str) -> Benchmark {
    all_benchmarks()
        .into_iter()
        .find(|b| b.info.name == name)
        .unwrap()
}

fn uu(factor: u32) -> Transform {
    Transform::Uu {
        factor,
        unmerge: UnmergeOptions::default(),
    }
}

fn on_hot(b: &Benchmark, t: Transform) -> Measurement {
    let hot = b.info.hot_kernels[0].to_string();
    
    measure(b, t, LoopFilter::Only { func: hot, loop_id: 0 }, None).unwrap()
}

/// §I / §IV RQ1: u&u speeds up the XSBench binary search despite replacing
/// predication with divergent branches.
#[test]
fn xsbench_uu_wins_despite_divergence() {
    let b = bench("XSBench");
    let base = measure_baseline(&b).unwrap();
    let m = on_hot(&b, uu(8));
    assert_eq!(m.checksum, base.checksum);
    assert!(m.time_ms < base.time_ms, "{} !< {}", m.time_ms, base.time_ms);
    // §V signatures: inst_misc down hard, warp efficiency down.
    assert!((m.metrics.thread_misc as f64) < 0.6 * base.metrics.thread_misc as f64);
    assert!(
        m.metrics.warp_execution_efficiency(32) < base.metrics.warp_execution_efficiency(32)
    );
    // IPC measured over fewer cycles for similar work improves.
    assert!(m.metrics.kernel_cycles < base.metrics.kernel_cycles);
}

/// §III-B: the bezier-surface loop gains ≈30% from u&u factor 2, and
/// (Fig. 7) u&u beats both unroll-alone and unmerge-alone.
#[test]
fn bezier_uu_beats_both_components() {
    let b = bench("bezier-surface");
    let base = measure_baseline(&b).unwrap();
    let uu2 = on_hot(&b, uu(2));
    let unroll2 = on_hot(&b, Transform::Unroll { factor: 2 });
    let unmerge = on_hot(&b, Transform::Unmerge);
    let s = |m: &Measurement| base.time_ms / m.time_ms;
    assert!(s(&uu2) > 1.25, "u&u speedup {}", s(&uu2));
    assert!(s(&uu2) > s(&unroll2), "u&u must beat unroll alone");
    assert!(s(&uu2) > s(&unmerge), "u&u must beat unmerge alone");
    assert!(
        s(&unmerge) > s(&unroll2),
        "for bezier, unmerge alone beats unroll alone"
    );
}

/// §IV RQ1 / §V: complex slows down under u&u, monotonically in the factor,
/// with collapsing warp efficiency; plain unrolling does not hurt it.
#[test]
fn complex_is_the_divergence_outlier() {
    let b = bench("complex");
    let base = measure_baseline(&b).unwrap();
    let u2 = on_hot(&b, uu(2));
    let u8 = on_hot(&b, uu(8));
    let unroll8 = on_hot(&b, Transform::Unroll { factor: 8 });
    assert!(u2.time_ms > base.time_ms);
    assert!(u8.time_ms > u2.time_ms, "slowdown grows with the factor");
    assert!(base.time_ms / u8.time_ms < 0.35, "severe at factor 8");
    assert!(unroll8.time_ms <= base.time_ms * 1.05, "unroll alone is fine");
    assert!(
        u8.metrics.warp_execution_efficiency(32) < 25.0,
        "warp efficiency collapses: {}",
        u8.metrics.warp_execution_efficiency(32)
    );
}

/// §IV RQ1: coordinates speeds up because u&u *inhibits* the baseline's own
/// full unrolling (verified the paper's way: explicitly disabling unrolling
/// gives the same speedup).
#[test]
fn coordinates_win_comes_from_inhibiting_baseline_unroll() {
    let b = bench("coordinates");
    let base = measure_baseline(&b).unwrap();
    let uu2 = on_hot(&b, uu(2));
    assert!(uu2.time_ms < base.time_ms);
    // The paper's control experiment: just forbidding unrolling on that
    // loop reproduces the speedup.
    let mut m = (b.build)();
    let id = m.find("coord_convert").unwrap();
    {
        let f = m.function_mut(id);
        let dom = uu_analysis::DomTree::compute(f);
        let forest = uu_analysis::LoopForest::compute(f, &dom);
        let h = forest.loops()[0].header;
        f.set_loop_pragma(h, uu_ir::LoopPragma::NoUnroll);
    }
    uu_core::compile(&mut m, &uu_core::PipelineOptions::default());
    let mut gpu = uu_simt::Gpu::new();
    let no_unroll = (b.run)(&m, &mut gpu).unwrap();
    assert_eq!(no_unroll.checksum, base.checksum);
    assert!(
        no_unroll.kernel_time_ms < base.time_ms,
        "disabling unrolling alone reproduces the win"
    );
}

/// §IV RQ2: code size and compile time grow with the unroll factor; the
/// paper's exponential-size formula shows up in practice.
#[test]
fn code_size_grows_with_factor() {
    let b = bench("rainflow");
    let base = measure_baseline(&b).unwrap();
    let sizes: Vec<u64> = [2u32, 4]
        .iter()
        .map(|&f| on_hot(&b, uu(f)).code_size)
        .collect();
    assert!(sizes[0] > base.code_size);
    assert!(sizes[1] > sizes[0], "size grows with factor: {sizes:?}");
    let c2 = on_hot(&b, uu(2));
    assert!(c2.compile_ms > 0.0);
}

/// §IV RQ3: unmerge alone is typically ineffective — its median per-loop
/// speedup sits at ≈1.0 even where u&u gains.
#[test]
fn unmerge_alone_is_weak_on_average() {
    for name in ["bn", "libor"] {
        let b = bench(name);
        let base = measure_baseline(&b).unwrap();
        let um = on_hot(&b, Transform::Unmerge);
        let u4 = on_hot(&b, uu(4));
        let s_um = base.time_ms / um.time_ms;
        let s_u4 = base.time_ms / u4.time_ms;
        assert!(
            s_u4 > s_um,
            "{name}: u&u ({s_u4}) must beat unmerge alone ({s_um})"
        );
    }
}

/// §IV RQ1 (ccs): u&u on the tight reduction loops forfeits the baseline's
/// runtime unrolling and slows the kernel down.
#[test]
fn ccs_uu_forfeits_runtime_unrolling() {
    let b = bench("ccs");
    let base = measure_baseline(&b).unwrap();
    let m = on_hot(&b, uu(4));
    assert!(
        m.time_ms > base.time_ms,
        "ccs must slow down: {} vs {}",
        m.time_ms,
        base.time_ms
    );
}

/// §V (haccmk): at factor 8 the unmerged body overflows the instruction
/// cache; plain unrolling stays ahead.
#[test]
fn haccmk_fetch_stalls_at_high_factors() {
    let b = bench("haccmk");
    let base = measure_baseline(&b).unwrap();
    let u8 = on_hot(&b, uu(8));
    let unroll8 = on_hot(&b, Transform::Unroll { factor: 8 });
    assert!(
        u8.metrics.stall_inst_fetch() > base.metrics.stall_inst_fetch(),
        "fetch stalls must appear"
    );
    assert!(
        base.time_ms / unroll8.time_ms > base.time_ms / u8.time_ms,
        "unroll stays ahead of u&u on haccmk at factor 8"
    );
}

//! Cross-crate integration: every benchmark application, compiled under
//! every configuration, must execute correctly on the simulator; the
//! heuristic must make the decisions the paper describes; and the compile
//! pipeline must stay within its block/timeout budgets.

use uu_core::{
    compile, HeuristicOptions, LoopFilter, PipelineOptions, Transform, UnmergeOptions,
};
use uu_harness::{measure, measure_baseline};
use uu_kernels::{all_benchmarks, count_loops, Benchmark};
use uu_simt::Gpu;

fn bench(name: &str) -> Benchmark {
    all_benchmarks()
        .into_iter()
        .find(|b| b.info.name == name)
        .unwrap()
}

/// Every application, under every configuration: verifier-clean IR and a
/// checksum equal to the baseline's.
#[test]
fn all_benchmarks_all_configs_preserve_checksums() {
    for b in all_benchmarks() {
        let base = measure_baseline(&b).unwrap_or_else(|e| panic!("{}: {e}", b.info.name));
        for (name, t) in [
            ("unroll4", Transform::Unroll { factor: 4 }),
            ("unmerge", Transform::Unmerge),
            (
                "uu4",
                Transform::Uu {
                    factor: 4,
                    unmerge: UnmergeOptions::default(),
                },
            ),
            (
                "heuristic",
                Transform::UuHeuristic(HeuristicOptions::default()),
            ),
        ] {
            let m = measure(&b, t, LoopFilter::All, None)
                .unwrap_or_else(|e| panic!("{}/{name}: {e}", b.info.name));
            assert_eq!(
                m.checksum, base.checksum,
                "{}/{name} changed the output",
                b.info.name
            );
        }
    }
}

/// The module loop counts equal Table I's `L` column and survive the full
/// baseline pipeline without verifier complaints.
#[test]
fn loop_population_and_pipeline_hygiene() {
    for b in all_benchmarks() {
        let mut m = (b.build)();
        assert_eq!(count_loops(&m), b.info.table_loops, "{}", b.info.name);
        let out = compile(&mut m, &PipelineOptions::default());
        assert!(!out.timed_out, "{} baseline timed out", b.info.name);
        uu_ir::verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", b.info.name));
    }
}

/// The heuristic respects the paper's skip rules on real kernels: the
/// convergent/divergent/pragma machinery is exercised by synthetic loops in
/// unit tests; here we check the decisions recorded for the complex
/// benchmark with the divergence guard enabled.
#[test]
fn heuristic_guard_skips_complex() {
    let b = bench("complex");
    let mut m = (b.build)();
    let out = compile(
        &mut m,
        &PipelineOptions {
            transform: Transform::UuHeuristic(HeuristicOptions {
                divergence_guard: true,
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    let divergent_skips = out
        .decisions
        .iter()
        .filter(|(f, d)| f == "complex_pow" && d.decision == uu_core::Decision::Divergent)
        .count();
    assert_eq!(divergent_skips, 1, "decisions: {:?}", out.decisions);
}

/// Per-loop filters only touch the named loop's function: transforming a
/// cold auxiliary loop never changes the hot kernels' code.
#[test]
fn loop_filter_is_surgical() {
    let b = bench("bezier-surface");
    let mk = |filter: LoopFilter| -> String {
        let mut m = (b.build)();
        compile(
            &mut m,
            &PipelineOptions {
                transform: Transform::Uu {
                    factor: 4,
                    unmerge: UnmergeOptions::default(),
                },
                filter,
                ..Default::default()
            },
        );
        let id = m.find("bezier_blend").unwrap();
        m.function(id).to_string()
    };
    let untouched = mk(LoopFilter::Only {
        func: "aux_counted_0".into(),
        loop_id: 0,
    });
    let baseline_only = {
        let mut m = (b.build)();
        compile(&mut m, &PipelineOptions::default());
        let id = m.find("bezier_blend").unwrap();
        m.function(id).to_string()
    };
    assert_eq!(
        untouched, baseline_only,
        "transforming an aux loop must not perturb the hot kernel"
    );
}

/// The compile-time accounting covers the expensive passes, and transformed
/// compiles cost more than baseline ones (Figure 6c's premise).
#[test]
fn compile_time_accounting() {
    let b = bench("rainflow");
    let mut m1 = (b.build)();
    let base = compile(&mut m1, &PipelineOptions::default());
    let mut m2 = (b.build)();
    let uu = compile(
        &mut m2,
        &PipelineOptions {
            transform: Transform::Uu {
                factor: 4,
                unmerge: UnmergeOptions::default(),
            },
            ..Default::default()
        },
    );
    for name in ["sccp", "gvn", "simplifycfg", "dce", "condprop", "instsimplify"] {
        assert!(
            uu.timings.iter().any(|t| t.name == name),
            "missing timing for {name}"
        );
    }
    assert!(uu.total >= base.total / 2, "accounting looks broken");
}

/// The simulator rejects transformed modules that would read undefined
/// values — i.e. the differential harness would catch a broken transform.
/// (Constructively: break an IR module by hand and watch it trip.)
#[test]
fn simulator_catches_undefined_reads() {
    use uu_ir::{Function, FunctionBuilder, Inst, InstKind, Param, Type, Value};
    let mut f = Function::new("bad", vec![Param::new("out", Type::Ptr)], Type::Void);
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    b.switch_to(entry);
    b.ret(None);
    // Manufacture a store whose value is an unlinked instruction result.
    let ghost = f.create_inst(Inst::new(
        InstKind::Bin {
            op: uu_ir::BinOp::Add,
            lhs: Value::imm(1i64),
            rhs: Value::imm(2i64),
        },
        Type::I64,
    ));
    let st = f.create_inst(Inst::new(
        InstKind::Store {
            ptr: Value::Arg(0),
            value: Value::Inst(ghost),
        },
        Type::Void,
    ));
    f.block_mut(entry).insts.insert(0, st);
    let mut gpu = Gpu::new();
    let buf = gpu.mem.alloc_i64(&[0]).unwrap();
    let err = gpu
        .launch(
            &f,
            uu_simt::LaunchConfig::new(1, 1),
            &[uu_simt::KernelArg::Buffer(buf)],
        )
        .unwrap_err();
    assert!(matches!(err, uu_simt::ExecError::UndefinedValue { .. }));
}

//! Decoded-vs-reference engine differential tests.
//!
//! The decoded warp engine (`uu_simt::DecodedKernel`) must be
//! observationally identical to the reference interpreter (`uu_simt::Warp`)
//! — same outputs, same metrics, same simulated time — on the seed corpus
//! and on all 16 paper kernels, at any `uu-par` worker count. A separate
//! oracle mode (`ExecEngine::ReferenceVerifyUniform`) asserts the
//! scalarization precondition: every value `uu_analysis::Uniformity` calls
//! warp-uniform holds the same constant in all active lanes.

use uu_check::corpus::load_corpus;
use uu_check::{build_kernel, execute_on, KernelSpec};
use uu_kernels::all_benchmarks;
use uu_simt::{ExecEngine, Gpu, GpuParams};

/// Engine-tagged payload of one execution of a prepared kernel function,
/// formatted for exact (bitwise, via Debug) comparison.
fn run_fn(f: &uu_ir::Function, spec: &KernelSpec, engine: ExecEngine) -> String {
    match execute_on(f, spec, engine) {
        Ok((out, metrics, time_ms)) => {
            format!("ok out={out:?} metrics={metrics:?} time={:016x}", time_ms.to_bits())
        }
        Err(e) => format!("err {e}"),
    }
}

/// Engine-tagged payload of one corpus execution of the raw (untransformed)
/// kernel.
fn run_spec(spec: &KernelSpec, engine: ExecEngine) -> String {
    run_fn(&build_kernel(spec), spec, engine)
}

#[test]
fn decoded_matches_reference_on_corpus() {
    let corpus = load_corpus();
    assert!(!corpus.is_empty(), "seed corpus must exist");
    for jobs in [1usize, 4] {
        let reference = uu_par::par_map_jobs(jobs, &corpus, |_, (_, spec)| {
            run_spec(spec, ExecEngine::Reference)
        });
        let decoded = uu_par::par_map_jobs(jobs, &corpus, |_, (_, spec)| {
            run_spec(spec, ExecEngine::Decoded)
        });
        for (((name, _), r), d) in corpus.iter().zip(&reference).zip(&decoded) {
            assert_eq!(r, d, "engines disagree on corpus spec {name} (jobs={jobs})");
        }
    }
}

#[test]
fn decoded_is_deterministic_across_job_counts() {
    let corpus = load_corpus();
    let j1 = uu_par::par_map_jobs(1, &corpus, |_, (_, spec)| {
        run_spec(spec, ExecEngine::Decoded)
    });
    let j4 = uu_par::par_map_jobs(4, &corpus, |_, (_, spec)| {
        run_spec(spec, ExecEngine::Decoded)
    });
    assert_eq!(j1, j4, "decoded engine must not depend on worker count");
}

/// Run one already-built (possibly compiled) module of a suite benchmark
/// under `engine` and flatten everything the launch reports into an
/// exactly-comparable string.
fn run_module(b: &uu_kernels::Benchmark, m: &uu_ir::Module, engine: ExecEngine) -> String {
    let mut params = GpuParams::default();
    params.engine = engine;
    let mut gpu = Gpu::with_params(params);
    match (b.run)(m, &mut gpu) {
        Ok(out) => format!(
            "ok time={:016x} checksum={:016x} transfer={} metrics={:?}",
            out.kernel_time_ms.to_bits(),
            out.checksum.to_bits(),
            out.transfer_bytes,
            out.metrics,
        ),
        Err(e) => format!("err {e}"),
    }
}

/// Run one suite benchmark under `engine` without any transform.
fn run_benchmark(b: &uu_kernels::Benchmark, engine: ExecEngine) -> String {
    run_module(b, &(b.build)(), engine)
}

#[test]
fn decoded_matches_reference_on_all_16_kernels() {
    let benches = all_benchmarks();
    assert_eq!(benches.len(), 16);
    for jobs in [1usize, 4] {
        let reference = uu_par::par_map_jobs(jobs, &benches, |_, b| {
            run_benchmark(b, ExecEngine::Reference)
        });
        let decoded = uu_par::par_map_jobs(jobs, &benches, |_, b| {
            run_benchmark(b, ExecEngine::Decoded)
        });
        for ((b, r), d) in benches.iter().zip(&reference).zip(&decoded) {
            assert!(r.starts_with("ok "), "{}: reference failed: {r}", b.info.name);
            assert_eq!(r, d, "engines disagree on {} (jobs={jobs})", b.info.name);
        }
    }
}

#[test]
fn uniform_values_identical_across_lanes_on_corpus() {
    // ReferenceVerifyUniform panics inside the interpreter if any
    // analysis-uniform value ever differs between active lanes.
    for (name, spec) in load_corpus() {
        let got = run_spec(&spec, ExecEngine::ReferenceVerifyUniform);
        let want = run_spec(&spec, ExecEngine::Reference);
        assert_eq!(got, want, "verify-uniform changed behaviour on {name}");
    }
}

#[test]
fn uniform_values_identical_across_lanes_on_kernel_suite() {
    for b in all_benchmarks() {
        let got = run_benchmark(&b, ExecEngine::ReferenceVerifyUniform);
        assert!(
            got.starts_with("ok "),
            "{}: verify-uniform run failed: {got}",
            b.info.name
        );
    }
}

/// The two compilation configs that involve control-flow melding, paired
/// with their harness labels.
fn meld_transforms() -> Vec<(&'static str, uu_core::Transform)> {
    vec![
        ("meld", uu_core::Transform::Meld),
        (
            "uu2+meld",
            uu_core::Transform::UuMeld {
                factor: 2,
                unmerge: Default::default(),
            },
        ),
    ]
}

#[test]
fn decoded_matches_reference_on_melded_corpus() {
    // Melded kernels exercise `Select` chains and predicated stores the raw
    // corpus never produces; both engines (and the uniformity verifier)
    // must still agree exactly.
    let corpus = load_corpus();
    assert!(!corpus.is_empty(), "seed corpus must exist");
    for (label, t) in meld_transforms() {
        for (name, spec) in &corpus {
            let mut m = uu_ir::Module::new("diff");
            let id = m.add_function(build_kernel(spec));
            let out = uu_core::compile(
                &mut m,
                &uu_core::PipelineOptions {
                    transform: t.clone(),
                    filter: uu_core::LoopFilter::All,
                    ..Default::default()
                },
            );
            assert!(
                out.verify_error.is_none(),
                "{label} broke corpus spec {name}: {:?}",
                out.verify_error
            );
            let f = m.function(id);
            let reference = run_fn(f, spec, ExecEngine::Reference);
            assert_eq!(
                reference,
                run_fn(f, spec, ExecEngine::Decoded),
                "engines disagree on corpus spec {name} under {label}"
            );
            assert_eq!(
                reference,
                run_fn(f, spec, ExecEngine::ReferenceVerifyUniform),
                "verify-uniform changed behaviour on corpus spec {name} under {label}"
            );
        }
    }
}

#[test]
fn decoded_matches_reference_on_melded_kernel_suite() {
    // All 16 paper kernels compiled under both meld configs, executed on
    // every engine. Compilation happens once per (kernel, config); the
    // compiled module is shared across engines so any disagreement is the
    // engine's fault, not compile nondeterminism.
    let benches = all_benchmarks();
    assert_eq!(benches.len(), 16);
    for (label, t) in meld_transforms() {
        let results = uu_par::par_map(&benches, |_, b| {
            let mut m = (b.build)();
            uu_core::compile(
                &mut m,
                &uu_core::PipelineOptions {
                    transform: t.clone(),
                    ..Default::default()
                },
            );
            let reference = run_module(b, &m, ExecEngine::Reference);
            let decoded = run_module(b, &m, ExecEngine::Decoded);
            let verified = run_module(b, &m, ExecEngine::ReferenceVerifyUniform);
            (reference, decoded, verified)
        });
        for (b, (reference, decoded, verified)) in benches.iter().zip(&results) {
            assert!(
                reference.starts_with("ok "),
                "{} under {label}: reference failed: {reference}",
                b.info.name
            );
            assert_eq!(
                reference, decoded,
                "engines disagree on {} under {label}",
                b.info.name
            );
            assert_eq!(
                reference, verified,
                "verify-uniform changed behaviour on {} under {label}",
                b.info.name
            );
        }
    }
}

#[test]
fn uniform_values_identical_across_lanes_on_random_programs() {
    // Beyond the checked-in corpus: freshly generated spec kernels. The
    // decoded engine must also agree with the reference on every one.
    uu_check::check(
        "uniform_values_identical_across_lanes_on_random_programs",
        &uu_check::Config::from_env(48),
        |spec: &KernelSpec| {
            let want = run_spec(spec, ExecEngine::Reference);
            let verified = run_spec(spec, ExecEngine::ReferenceVerifyUniform);
            if verified != want {
                return Err(format!("verify-uniform diverged: {verified} vs {want}"));
            }
            let decoded = run_spec(spec, ExecEngine::Decoded);
            if decoded != want {
                return Err(format!("decoded diverged: {decoded} vs {want}"));
            }
            Ok(())
        },
    );
}

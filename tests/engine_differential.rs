//! Decoded-vs-reference engine differential tests.
//!
//! The decoded warp engine (`uu_simt::DecodedKernel`) must be
//! observationally identical to the reference interpreter (`uu_simt::Warp`)
//! — same outputs, same metrics, same simulated time — on the seed corpus
//! and on all 16 paper kernels, at any `uu-par` worker count. A separate
//! oracle mode (`ExecEngine::ReferenceVerifyUniform`) asserts the
//! scalarization precondition: every value `uu_analysis::Uniformity` calls
//! warp-uniform holds the same constant in all active lanes.

use uu_check::corpus::load_corpus;
use uu_check::{build_kernel, execute_on, KernelSpec};
use uu_kernels::all_benchmarks;
use uu_simt::{ExecEngine, Gpu, GpuParams};

/// Engine-tagged payload of one execution of a prepared kernel function,
/// formatted for exact (bitwise, via Debug) comparison.
fn run_fn(f: &uu_ir::Function, spec: &KernelSpec, engine: ExecEngine) -> String {
    match execute_on(f, spec, engine) {
        Ok((out, metrics, time_ms)) => {
            format!("ok out={out:?} metrics={metrics:?} time={:016x}", time_ms.to_bits())
        }
        Err(e) => format!("err {e}"),
    }
}

/// Engine-tagged payload of one corpus execution of the raw (untransformed)
/// kernel.
fn run_spec(spec: &KernelSpec, engine: ExecEngine) -> String {
    run_fn(&build_kernel(spec), spec, engine)
}

#[test]
fn decoded_matches_reference_on_corpus() {
    let corpus = load_corpus();
    assert!(!corpus.is_empty(), "seed corpus must exist");
    for jobs in [1usize, 4] {
        let reference = uu_par::par_map_jobs(jobs, &corpus, |_, (_, spec)| {
            run_spec(spec, ExecEngine::Reference)
        });
        let decoded = uu_par::par_map_jobs(jobs, &corpus, |_, (_, spec)| {
            run_spec(spec, ExecEngine::Decoded)
        });
        for (((name, _), r), d) in corpus.iter().zip(&reference).zip(&decoded) {
            assert_eq!(r, d, "engines disagree on corpus spec {name} (jobs={jobs})");
        }
    }
}

#[test]
fn decoded_is_deterministic_across_job_counts() {
    let corpus = load_corpus();
    let j1 = uu_par::par_map_jobs(1, &corpus, |_, (_, spec)| {
        run_spec(spec, ExecEngine::Decoded)
    });
    let j4 = uu_par::par_map_jobs(4, &corpus, |_, (_, spec)| {
        run_spec(spec, ExecEngine::Decoded)
    });
    assert_eq!(j1, j4, "decoded engine must not depend on worker count");
}

/// Run one already-built (possibly compiled) module of a suite benchmark
/// under `engine` and flatten everything the launch reports into an
/// exactly-comparable string.
fn run_module(b: &uu_kernels::Benchmark, m: &uu_ir::Module, engine: ExecEngine) -> String {
    let mut params = GpuParams::default();
    params.engine = engine;
    let mut gpu = Gpu::with_params(params);
    match (b.run)(m, &mut gpu) {
        Ok(out) => format!(
            "ok time={:016x} checksum={:016x} transfer={} metrics={:?}",
            out.kernel_time_ms.to_bits(),
            out.checksum.to_bits(),
            out.transfer_bytes,
            out.metrics,
        ),
        Err(e) => format!("err {e}"),
    }
}

/// Run one suite benchmark under `engine` without any transform.
fn run_benchmark(b: &uu_kernels::Benchmark, engine: ExecEngine) -> String {
    run_module(b, &(b.build)(), engine)
}

#[test]
fn decoded_matches_reference_on_all_16_kernels() {
    let benches = all_benchmarks();
    assert_eq!(benches.len(), 16);
    for jobs in [1usize, 4] {
        let reference = uu_par::par_map_jobs(jobs, &benches, |_, b| {
            run_benchmark(b, ExecEngine::Reference)
        });
        let decoded = uu_par::par_map_jobs(jobs, &benches, |_, b| {
            run_benchmark(b, ExecEngine::Decoded)
        });
        for ((b, r), d) in benches.iter().zip(&reference).zip(&decoded) {
            assert!(r.starts_with("ok "), "{}: reference failed: {r}", b.info.name);
            assert_eq!(r, d, "engines disagree on {} (jobs={jobs})", b.info.name);
        }
    }
}

#[test]
fn uniform_values_identical_across_lanes_on_corpus() {
    // ReferenceVerifyUniform panics inside the interpreter if any
    // analysis-uniform value ever differs between active lanes.
    for (name, spec) in load_corpus() {
        let got = run_spec(&spec, ExecEngine::ReferenceVerifyUniform);
        let want = run_spec(&spec, ExecEngine::Reference);
        assert_eq!(got, want, "verify-uniform changed behaviour on {name}");
    }
}

#[test]
fn uniform_values_identical_across_lanes_on_kernel_suite() {
    for b in all_benchmarks() {
        let got = run_benchmark(&b, ExecEngine::ReferenceVerifyUniform);
        assert!(
            got.starts_with("ok "),
            "{}: verify-uniform run failed: {got}",
            b.info.name
        );
    }
}

/// The two compilation configs that involve control-flow melding, paired
/// with their harness labels.
fn meld_transforms() -> Vec<(&'static str, uu_core::Transform)> {
    vec![
        ("meld", uu_core::Transform::Meld),
        (
            "uu2+meld",
            uu_core::Transform::UuMeld {
                factor: 2,
                unmerge: Default::default(),
            },
        ),
    ]
}

#[test]
fn decoded_matches_reference_on_melded_corpus() {
    // Melded kernels exercise `Select` chains and predicated stores the raw
    // corpus never produces; both engines (and the uniformity verifier)
    // must still agree exactly.
    let corpus = load_corpus();
    assert!(!corpus.is_empty(), "seed corpus must exist");
    for (label, t) in meld_transforms() {
        for (name, spec) in &corpus {
            let mut m = uu_ir::Module::new("diff");
            let id = m.add_function(build_kernel(spec));
            let out = uu_core::compile(
                &mut m,
                &uu_core::PipelineOptions {
                    transform: t.clone(),
                    filter: uu_core::LoopFilter::All,
                    ..Default::default()
                },
            );
            assert!(
                out.verify_error.is_none(),
                "{label} broke corpus spec {name}: {:?}",
                out.verify_error
            );
            let f = m.function(id);
            let reference = run_fn(f, spec, ExecEngine::Reference);
            assert_eq!(
                reference,
                run_fn(f, spec, ExecEngine::Decoded),
                "engines disagree on corpus spec {name} under {label}"
            );
            assert_eq!(
                reference,
                run_fn(f, spec, ExecEngine::ReferenceVerifyUniform),
                "verify-uniform changed behaviour on corpus spec {name} under {label}"
            );
        }
    }
}

#[test]
fn decoded_matches_reference_on_melded_kernel_suite() {
    // All 16 paper kernels compiled under both meld configs, executed on
    // every engine. Compilation happens once per (kernel, config); the
    // compiled module is shared across engines so any disagreement is the
    // engine's fault, not compile nondeterminism.
    let benches = all_benchmarks();
    assert_eq!(benches.len(), 16);
    for (label, t) in meld_transforms() {
        let results = uu_par::par_map(&benches, |_, b| {
            let mut m = (b.build)();
            uu_core::compile(
                &mut m,
                &uu_core::PipelineOptions {
                    transform: t.clone(),
                    ..Default::default()
                },
            );
            let reference = run_module(b, &m, ExecEngine::Reference);
            let decoded = run_module(b, &m, ExecEngine::Decoded);
            let verified = run_module(b, &m, ExecEngine::ReferenceVerifyUniform);
            (reference, decoded, verified)
        });
        for (b, (reference, decoded, verified)) in benches.iter().zip(&results) {
            assert!(
                reference.starts_with("ok "),
                "{} under {label}: reference failed: {reference}",
                b.info.name
            );
            assert_eq!(
                reference, decoded,
                "engines disagree on {} under {label}",
                b.info.name
            );
            assert_eq!(
                reference, verified,
                "verify-uniform changed behaviour on {} under {label}",
                b.info.name
            );
        }
    }
}

#[test]
fn uniform_values_identical_across_lanes_on_random_programs() {
    // Beyond the checked-in corpus: freshly generated spec kernels. The
    // decoded engine must also agree with the reference on every one.
    uu_check::check(
        "uniform_values_identical_across_lanes_on_random_programs",
        &uu_check::Config::from_env(48),
        |spec: &KernelSpec| {
            let want = run_spec(spec, ExecEngine::Reference);
            let verified = run_spec(spec, ExecEngine::ReferenceVerifyUniform);
            if verified != want {
                return Err(format!("verify-uniform diverged: {verified} vs {want}"));
            }
            let decoded = run_spec(spec, ExecEngine::Decoded);
            if decoded != want {
                return Err(format!("decoded diverged: {decoded} vs {want}"));
            }
            Ok(())
        },
    );
}

/// A small divergent kernel for the decode-cache tests: a guarded
/// per-lane loop (`out[gid] = n + sum(0..gid mod 7)` for `gid < n`)
/// exercising phis, divergence, and uniform/varying operands.
fn cache_probe_kernel() -> uu_ir::Function {
    use uu_ir::{CastOp, FunctionBuilder, ICmpPred, Param, Type, Value};
    let mut f = uu_ir::Function::new(
        "cacheprobe",
        vec![Param::new("out", Type::Ptr), Param::new("n", Type::I64)],
        Type::Void,
    );
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f);
    let header = b.create_block();
    let body = b.create_block();
    let done = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let gid = b.global_thread_id();
    let gid64 = b.cast(CastOp::Sext, gid, Type::I64);
    let inb = b.icmp(ICmpPred::Slt, gid64, Value::Arg(1));
    b.cond_br(inb, header, exit);
    b.switch_to(header);
    let i = b.phi(Type::I64);
    let acc = b.phi(Type::I64);
    b.add_phi_incoming(i, entry, Value::imm(0i64));
    b.add_phi_incoming(acc, entry, Value::imm(0i64));
    let lim = b.bin(uu_ir::BinOp::SRem, gid64, Value::imm(7i64));
    let c = b.icmp(ICmpPred::Slt, i, lim);
    b.cond_br(c, body, done);
    b.switch_to(body);
    let acc1 = b.add(acc, i);
    let i1 = b.add(i, Value::imm(1i64));
    b.add_phi_incoming(i, body, i1);
    b.add_phi_incoming(acc, body, acc1);
    b.br(header);
    b.switch_to(done);
    let total = b.add(acc, Value::Arg(1));
    let p = b.gep(Value::Arg(0), gid64, 8);
    b.store(p, total);
    b.br(exit);
    b.switch_to(exit);
    b.ret(None);
    uu_ir::verify_function(&f).unwrap();
    f
}

/// Launch `f` on a fresh GPU and flatten report + outputs for exact
/// comparison.
fn launch_probe(f: &uu_ir::Function, grid: u32, block: u32, n: i64) -> String {
    use uu_simt::{KernelArg, LaunchConfig};
    let mut gpu = Gpu::new();
    let threads = (grid as usize) * (block as usize);
    let out = gpu.mem.alloc_i64(&vec![0i64; threads.max(1)]).unwrap();
    let report = gpu
        .launch(
            f,
            LaunchConfig::new(grid, block),
            &[KernelArg::Buffer(out), KernelArg::I64(n)],
        )
        .unwrap();
    format!(
        "out={:?} metrics={:?} time={:016x}",
        gpu.mem.read_i64(out).unwrap(),
        report.metrics,
        report.time_ms.to_bits()
    )
}

#[test]
fn decode_cache_is_observationally_identical_across_geometries() {
    // The same kernel launched across differing grid/block dims and
    // workloads: the first launch decodes, every subsequent launch of the
    // same (function, baked constants) pair hits the thread's cache. Each
    // cached launch must be Debug-identical to a launch made with a cold
    // cache (fresh decode).
    let f = cache_probe_kernel();
    let geometries = [(1u32, 32u32), (2, 64), (4, 48), (1, 16), (3, 32)];
    let workloads = [0i64, 7, 31, 96, 200];
    uu_simt::decode_cache_clear();
    let mut cached = Vec::new();
    for &(g, b) in &geometries {
        for &n in &workloads {
            cached.push(launch_probe(&f, g, b, n));
        }
    }
    let (hits, misses) = uu_simt::decode_cache_stats();
    // One miss per distinct baked-in workload constant; geometry is not
    // part of the key, so all geometry variations hit.
    assert_eq!(misses, workloads.len() as u64, "one decode per workload");
    assert_eq!(
        hits,
        (geometries.len() as u64 - 1) * workloads.len() as u64,
        "every relaunch reuses the cached decode"
    );
    let mut fresh = Vec::new();
    for &(g, b) in &geometries {
        for &n in &workloads {
            uu_simt::decode_cache_clear();
            fresh.push(launch_probe(&f, g, b, n));
        }
    }
    assert_eq!(cached, fresh, "cached decode must equal a fresh decode");
    uu_simt::decode_cache_clear();
}

#[test]
fn decode_cache_reuses_across_corpus_relaunches() {
    // Corpus kernels relaunched with identical specs must produce
    // identical reports whether the decode came from the cache or not.
    let corpus = load_corpus();
    assert!(!corpus.is_empty(), "seed corpus must exist");
    for (name, spec) in corpus.iter().take(16) {
        uu_simt::decode_cache_clear();
        let cold = run_spec(spec, ExecEngine::Decoded);
        let warm = run_spec(spec, ExecEngine::Decoded);
        let (hits, _) = uu_simt::decode_cache_stats();
        assert!(hits >= 1, "{name}: relaunch should hit the decode cache");
        assert_eq!(cold, warm, "{name}: cached relaunch changed behaviour");
    }
    uu_simt::decode_cache_clear();
}

/// Execute `f` under a manually decoded kernel (fused or unfused
/// superblocks), one warp of 32 lanes, with an optional injected memory
/// fault; flatten everything observable for exact comparison.
fn run_decoded_manual(
    f: &uu_ir::Function,
    spec: &KernelSpec,
    fused: bool,
    fault_after: Option<u64>,
) -> String {
    use uu_analysis::{PostDomTree, Uniformity};
    use uu_simt::{DecodedKernel, GlobalMemory, Metrics, Scratch, SectorSet, WarpGeometry};
    let mut params = GpuParams::default();
    params.max_warp_insts = 2_000_000;
    let mut mem = GlobalMemory::new(1 << 20);
    let out = mem.alloc_i64(&vec![0i64; 32]).unwrap();
    if let Some(n) = fault_after {
        mem.inject_fault_after(n);
    }
    let consts = [
        uu_ir::Constant::I64(out.addr as i64),
        uu_ir::Constant::I64(spec.bound),
        uu_ir::Constant::I64(spec.input_a),
    ];
    let pdom = PostDomTree::compute(f);
    let uni = Uniformity::compute(f);
    let k = if fused {
        DecodedKernel::decode(f, &pdom, &uni, &consts)
    } else {
        DecodedKernel::decode_unfused(f, &pdom, &uni, &consts)
    };
    let mut scratch = Scratch::new();
    let mut touched = SectorSet::new();
    touched.reset(mem.used().div_ceil(params.sector_bytes) + 1);
    let mut metrics = Metrics::default();
    let geom = WarpGeometry {
        block_idx: 0,
        block_dim: 32,
        grid_dim: 1,
        first_thread: 0,
    };
    let r = k.run_warp(&mut scratch, geom, &params, &mut mem, &mut metrics, &mut touched);
    format!(
        "result={r:?} metrics={metrics:?} sectors={} out={:?}",
        touched.len(),
        mem.read_i64(out)
    )
}

#[test]
fn superblock_fusion_is_observationally_identical_on_corpus() {
    // Fused superblock streams vs one-block-per-stream decoding of the
    // same kernels: issue cycles, metrics, outputs, errors, and the
    // fault-countdown access order must all agree exactly.
    let corpus = load_corpus();
    assert!(!corpus.is_empty(), "seed corpus must exist");
    for (name, spec) in &corpus {
        let f = build_kernel(spec);
        assert_eq!(
            run_decoded_manual(&f, spec, true, None),
            run_decoded_manual(&f, spec, false, None),
            "fusion changed behaviour on corpus spec {name}"
        );
        // Fault countdowns probe the memory access *order*, not just the
        // set: the n-th checked access must fault in both decodings.
        for fault in [1u64, 7, 40] {
            assert_eq!(
                run_decoded_manual(&f, spec, true, Some(fault)),
                run_decoded_manual(&f, spec, false, Some(fault)),
                "fusion changed fault order on corpus spec {name} (fault@{fault})"
            );
        }
    }
}

#[test]
fn superblock_fusion_is_observationally_identical_on_melded_corpus() {
    // Meld produces long straight-line regions — exactly what fusion
    // targets — so pin fused-vs-unfused agreement there too.
    let corpus = load_corpus();
    for (name, spec) in corpus.iter().take(24) {
        let mut m = uu_ir::Module::new("sbdiff");
        let id = m.add_function(build_kernel(spec));
        let out = uu_core::compile(
            &mut m,
            &uu_core::PipelineOptions {
                transform: uu_core::Transform::Meld,
                filter: uu_core::LoopFilter::All,
                ..Default::default()
            },
        );
        assert!(out.verify_error.is_none(), "meld broke corpus spec {name}");
        let f = m.function(id);
        assert_eq!(
            run_decoded_manual(f, spec, true, None),
            run_decoded_manual(f, spec, false, None),
            "fusion changed behaviour on melded corpus spec {name}"
        );
        for fault in [3u64, 25] {
            assert_eq!(
                run_decoded_manual(f, spec, true, Some(fault)),
                run_decoded_manual(f, spec, false, Some(fault)),
                "fusion changed fault order on melded spec {name} (fault@{fault})"
            );
        }
    }
}

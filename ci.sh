#!/usr/bin/env bash
# CI entry point. Fully offline: the workspace has no registry
# dependencies (uu-check replaces rand/proptest/criterion), so every step
# must pass with --offline on a clean checkout.
#
#   ./ci.sh          # build (warnings are errors), test, fuzz smoke
#
# Knobs (see DESIGN.md "Testing & fuzzing"):
#   UU_CHECK_SEED   replay a whole fuzz run (decimal or 0x-hex)
#   UU_CHECK_CASES  per-property case budget (ci.sh smoke uses 200)
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline, deny warnings) =="
RUSTFLAGS="${RUSTFLAGS:-} -Dwarnings" cargo build --release --offline --all-targets

echo "== test =="
cargo test -q --offline

echo "== fuzz smoke (200 cases per property) =="
UU_CHECK_CASES=200 cargo test -q --offline --release -p uu-tests

echo "ci.sh: all green"

#!/usr/bin/env bash
# CI entry point. Fully offline: the workspace has no registry
# dependencies (uu-check replaces rand/proptest/criterion), so every step
# must pass with --offline on a clean checkout.
#
#   ./ci.sh          # build (warnings are errors), test, fuzz smoke
#
# Knobs (see DESIGN.md "Testing & fuzzing"):
#   UU_CHECK_SEED   replay a whole fuzz run (decimal or 0x-hex)
#   UU_CHECK_CASES  per-property case budget (ci.sh smoke uses 200)
#   UU_JOBS         worker count for the parallel sweep/fuzz engine
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline, deny warnings) =="
RUSTFLAGS="${RUSTFLAGS:-} -Dwarnings" cargo build --release --offline --all-targets

echo "== test =="
cargo test -q --offline

echo "== fuzz smoke (200 cases per property) =="
UU_CHECK_CASES=200 cargo test -q --offline --release -p uu-tests

echo "== parallel determinism: uu-fuzz stdout must not depend on UU_JOBS =="
# Same seed, serial vs 4 workers. stdout carries the corpus verdicts, the
# per-case digests and (on failure) the shrunk spec; stderr carries the
# timings. Any scheduling leak into the report shows up as a diff here.
mkdir -p target/ci
t1=$(date +%s)
UU_CHECK_CASES=200 UU_JOBS=1 ./target/release/uu-fuzz > target/ci/fuzz-j1.txt
t2=$(date +%s)
UU_CHECK_CASES=200 UU_JOBS=4 ./target/release/uu-fuzz > target/ci/fuzz-j4.txt
t3=$(date +%s)
diff target/ci/fuzz-j1.txt target/ci/fuzz-j4.txt
echo "fuzz smoke identical across UU_JOBS (serial $((t2-t1))s, 4 workers $((t3-t2))s)"

echo "== fault-injection smoke: degraded reports must not depend on UU_JOBS =="
# Three fault kinds (a pass panic, a silent miscompile, a one-shot memory
# fault), each swept at one and four workers on one benchmark. The sweep
# must complete, the fault report must record the degradation, and the
# whole report directory must be byte-identical across worker counts
# (see DESIGN.md "Fault tolerance & crash recovery").
for fault in 'panic@3' 'miscompile@2:7' 'mem@40'; do
  for jobs in 1 4; do
    out="target/ci/fault-${fault//[@:]/-}-j${jobs}"
    rm -rf "$out"
    UU_FAULT="$fault" UU_JOBS="$jobs" \
      ./target/release/uu-harness fig7 --fast --bench bezier-surface --out "$out" \
      > /dev/null
  done
  diff -r "target/ci/fault-${fault//[@:]/-}-j1" "target/ci/fault-${fault//[@:]/-}-j4"
  # The fault report must actually record a degradation, not a clean run.
  if grep -q 'ran cleanly' "target/ci/fault-${fault//[@:]/-}-j1/faults.txt"; then
    echo "fault $fault left no trace in faults.txt" >&2
    exit 1
  fi
  echo "fault $fault: contained, diagnosed, identical across UU_JOBS"
done

echo "== meld smoke: golden snapshots, study determinism, injected meld panic =="
# The meld golden before/after snapshots must match the checked-in files
# (the full test suite above runs them too; this rung re-runs just the
# meld ones so a meld regression is named in the CI log).
cargo test -q --offline --release -p uu-core --test golden golden_meld > /dev/null
# The three-way unmerge/meld study must be byte-identical at 1 and 4
# workers, like every other report artifact.
for jobs in 1 4; do
  rm -rf "target/ci/study-j${jobs}"
  UU_JOBS="$jobs" ./target/release/uu-harness study --bench mandelbrot \
    --out "target/ci/study-j${jobs}" > /dev/null
done
diff -r target/ci/study-j1 target/ci/study-j4
# A panic injected into pass invocation 1 — the meld invocation of every
# uu<k>+meld compile — must be contained (study completes), must leave a
# `meld#1` trace in the fig9 diag column, and must stay byte-identical
# across worker counts.
for jobs in 1 4; do
  out="target/ci/study-fault-j${jobs}"
  rm -rf "$out"
  UU_FAULT='panic@1' UU_JOBS="$jobs" \
    ./target/release/uu-harness study --bench mandelbrot --out "$out" > /dev/null
done
diff -r target/ci/study-fault-j1 target/ci/study-fault-j4
if ! grep -q 'meld#1' target/ci/study-fault-j1/fig9.csv; then
  echo "injected meld panic left no meld#1 trace in fig9.csv" >&2
  exit 1
fi
echo "meld smoke: golden + study + faulted study identical across UU_JOBS"

echo "== engine identity: checked-in results-fast/ must reproduce byte-identically =="
# The decoded execution engine must not change a single reported byte
# relative to the committed reports (the cycle model is engine-invariant).
# The sweep launches every kernel config many times, so after the first
# launch of each function this rung runs almost entirely on the
# cross-launch decode cache — the byte-identical diff is also the
# cached-decode identity gate (a stale or mis-keyed cache entry would
# surface here as a report diff).
rm -rf target/ci/results-fast
./target/release/uu-harness all --fast --out target/ci/results-fast > /dev/null
diff -r results-fast target/ci/results-fast
echo "results-fast (cached-decode sweep) reproduces byte-identically"

echo "== serve smoke: daemon round-trip, cache hit, fault containment, cached-sweep identity =="
# Start the compile-service daemon on a Unix socket with a disk cache,
# round-trip the same kernel compile twice (the second must be a cache
# hit), inject a pass panic into a request (the daemon must survive and
# report the degradation rung), and check the stats verb answers with
# valid versioned JSON.
rm -rf target/ci/serve-cache target/ci/serve.sock
UU_CACHE_DIR=target/ci/serve-cache \
  ./target/release/uu-harness serve --socket target/ci/serve.sock 2> /dev/null &
serve_pid=$!
trap 'kill "$serve_pid" 2> /dev/null || true' EXIT
./target/release/uu-harness client --socket target/ci/serve.sock \
  --bench mandelbrot --config uu4 > target/ci/serve-first.txt
grep -q '^cached: miss$' target/ci/serve-first.txt
./target/release/uu-harness client --socket target/ci/serve.sock \
  --bench mandelbrot --config uu4 > target/ci/serve-second.txt
grep -q '^cached: hit$' target/ci/serve-second.txt
# Identical compile metadata on hit and miss (only the cached header flips).
diff <(grep -v '^cached:' target/ci/serve-first.txt) \
     <(grep -v '^cached:' target/ci/serve-second.txt)
# A faulted request: contained, answered, degraded rung reported.
./target/release/uu-harness client --socket target/ci/serve.sock \
  --bench mandelbrot --config uu4 --fault panic@1 > target/ci/serve-fault.txt
grep -q '^rung: ' target/ci/serve-fault.txt
if grep -q '^rung: full$' target/ci/serve-fault.txt; then
  echo "injected fault did not degrade the service compile rung" >&2
  exit 1
fi
# The daemon survived the faulted request: stats still answers, as JSON.
./target/release/uu-harness client --socket target/ci/serve.sock --verb stats \
  | tail -n +2 > target/ci/serve-stats.json
./target/release/uu-jsonck target/ci/serve-stats.json
grep -q '"stats_version": 2' target/ci/serve-stats.json
./target/release/uu-harness client --socket target/ci/serve.sock --verb shutdown > /dev/null
wait "$serve_pid"
trap - EXIT
echo "serve smoke: round-trip, hit, fault containment, shutdown all good"

# Cache-aware sweep identity: the fast sweep through a disk cache (cold,
# then warm) must be byte-identical to the cacheless reference directory
# produced by the engine-identity rung above.
rm -rf target/ci/sweep-cache
for pass in cold warm; do
  rm -rf "target/ci/results-fast-cache-$pass"
  t0=$(date +%s)
  UU_CACHE_DIR=target/ci/sweep-cache \
    ./target/release/uu-harness all --fast --out "target/ci/results-fast-cache-$pass" \
    > /dev/null 2> /dev/null
  eval "t_$pass=$(( $(date +%s) - t0 ))"
  diff -r target/ci/results-fast "target/ci/results-fast-cache-$pass"
done
echo "cached fast sweep byte-identical (cold ${t_cold}s, warm ${t_warm}s)"

echo "== serve stress: admission control, service faults, graceful drain =="
# A deliberately under-provisioned daemon (2 workers, ONE admission slot)
# with a service-level fault plan: the first admitted compile stalls
# 1500 ms holding the slot, a later one loses its connection, another
# panics in the handler. Against it: a no-retry probe that must be shed
# with a structured `busy` + retry-after-ms, a health check that must
# answer while the slot is held (control verbs are never shed), and
# concurrent retrying clients that must ALL land real responses. Then a
# drain shutdown must complete with exit 0 and extended stats as valid
# versioned JSON.
rm -rf target/ci/stress.sock
UU_SERVE_WORKERS=2 UU_SERVE_INFLIGHT=1 \
UU_SERVE_FAULT='slow@0:1500,disconnect@2,panic@3' \
  ./target/release/uu-harness serve --socket target/ci/stress.sock 2> /dev/null &
stress_pid=$!
trap 'kill "$stress_pid" 2> /dev/null || true' EXIT
# Occupy the only admission slot (this request draws the slow fault).
./target/release/uu-harness client --socket target/ci/stress.sock \
  --bench mandelbrot --config unroll2 > target/ci/stress-unroll2.txt &
slow_pid=$!
sleep 0.5
# Shed: a single-attempt probe gets the structured overload response.
if ./target/release/uu-harness client --socket target/ci/stress.sock \
  --bench mandelbrot --config unroll4 --no-retry > target/ci/stress-busy.txt; then
  echo "no-retry probe against a saturated daemon must exit nonzero" >&2
  exit 1
fi
grep -q '^busy$' target/ci/stress-busy.txt
grep -q '^retry-after-ms: ' target/ci/stress-busy.txt
# Control plane stays responsive while the data plane is saturated.
./target/release/uu-harness client --socket target/ci/stress.sock --verb health \
  > target/ci/stress-health.txt
grep -q '^draining: 0$' target/ci/stress-health.txt
./target/release/uu-harness client --socket target/ci/stress.sock --verb ready \
  > target/ci/stress-ready.txt
grep -q '^ready: 1$' target/ci/stress-ready.txt
# Concurrent retrying clients ride out the stall, the dropped connection
# and the handler panic — zero lost responses.
client_pids=()
for cfg in unroll8 uu2 uu4 uu8; do
  ./target/release/uu-harness client --socket target/ci/stress.sock \
    --bench mandelbrot --config "$cfg" > "target/ci/stress-$cfg.txt" &
  client_pids+=($!)
done
wait "$slow_pid"
for pid in "${client_pids[@]}"; do wait "$pid"; done
for cfg in unroll2 unroll8 uu2 uu4 uu8; do
  grep -q '^ok$' "target/ci/stress-$cfg.txt" || {
    echo "stress client $cfg lost its response" >&2; exit 1; }
done
# Extended stats: versioned JSON, and the overload counters moved.
./target/release/uu-harness client --socket target/ci/stress.sock --verb stats \
  | tail -n +2 > target/ci/stress-stats.json
./target/release/uu-jsonck target/ci/stress-stats.json
grep -q '"stats_version": 2' target/ci/stress-stats.json
grep -q '"busy_shed": [1-9]' target/ci/stress-stats.json
grep -q '"handler_panics": [1-9]' target/ci/stress-stats.json
# Drain: shutdown is acknowledged and the daemon exits cleanly.
./target/release/uu-harness client --socket target/ci/stress.sock --verb shutdown \
  > target/ci/stress-shutdown.txt
grep -q '^ok$' target/ci/stress-shutdown.txt
wait "$stress_pid"
trap - EXIT
echo "serve stress: shed, contained, drained with zero lost responses"

echo "== remote-backend identity: daemon-backed study must match the local reference =="
# The same study the meld rung produced locally (target/ci/study-j1),
# regenerated with every compile shipped through a freshly started daemon
# (UU_SERVE_SOCKET) at 1 and 4 workers: byte-identical, both times.
rm -rf target/ci/remote.sock target/ci/remote-cache
UU_SERVE_WORKERS=2 UU_CACHE_DIR=target/ci/remote-cache \
  ./target/release/uu-harness serve --socket target/ci/remote.sock 2> /dev/null &
remote_pid=$!
trap 'kill "$remote_pid" 2> /dev/null || true' EXIT
for jobs in 1 4; do
  rm -rf "target/ci/remote-study-j${jobs}"
  UU_JOBS="$jobs" UU_SERVE_SOCKET=target/ci/remote.sock \
    ./target/release/uu-harness study --bench mandelbrot \
    --out "target/ci/remote-study-j${jobs}" > /dev/null
  diff -r target/ci/study-j1 "target/ci/remote-study-j${jobs}"
done
# Not vacuous: the daemon must actually have served the compiles (a
# silent local fallback would make the diff above meaningless).
./target/release/uu-harness client --socket target/ci/remote.sock --verb stats \
  | tail -n +2 > target/ci/remote-stats.json
if grep -q '"compile_misses": 0,' target/ci/remote-stats.json; then
  echo "daemon-backed study compiled nothing remotely" >&2
  exit 1
fi
./target/release/uu-harness client --socket target/ci/remote.sock --verb shutdown > /dev/null
wait "$remote_pid"
trap - EXIT
echo "daemon-backed study byte-identical to the local reference at UU_JOBS=1 and 4"

echo "== simulator throughput bench smoke + BENCH_sim.json well-formedness =="
# Smoke only — no thresholds; the JSON is the perf trajectory artifact.
# Bench binaries run with CWD = the package dir, so the artifact dir
# must be absolute to land under the workspace target/.
UU_BENCH_SAMPLES=3 UU_BENCH_WARMUP_MS=20 UU_BENCH_DIR="$PWD/target/ci/uu-bench" \
  cargo bench -q --offline -p uu-bench --bench sim > /dev/null
./target/release/uu-jsonck target/ci/uu-bench/BENCH_sim.json
# The same bench loop under the verify-uniform oracle (reference engine
# cross-checking every scalarization decision) on a two-app slice — the
# full suite under the oracle is too slow for a smoke rung. Filtered
# runs skip the suite-total/fast-sweep aggregates (see sim.rs), so this
# JSON can never be mistaken for a trajectory row.
UU_SIMT_ENGINE=verify-uniform UU_BENCH_APPS=bezier-surface,quicksort \
  UU_BENCH_SAMPLES=3 UU_BENCH_WARMUP_MS=20 \
  UU_BENCH_DIR="$PWD/target/ci/uu-bench-vu" \
  cargo bench -q --offline -p uu-bench --bench sim > /dev/null
./target/release/uu-jsonck target/ci/uu-bench-vu/BENCH_sim.json
# The committed trajectory artifact at the repo root must stay parseable.
./target/release/uu-jsonck BENCH_sim.json

echo "== compile throughput bench smoke + BENCH_compile.json well-formedness =="
# One app keeps the smoke fast; the committed full-matrix trajectory in
# BENCH_compile.json is validated alongside the freshly generated JSON.
# Dense side-tables and delta snapshots must never reach report bytes:
# the engine-identity rung above already diffed results-fast/, so this
# rung only needs the bench artifacts to be well-formed.
UU_BENCH_APPS=bezier-surface UU_BENCH_SAMPLES=3 UU_BENCH_WARMUP_MS=20 \
  UU_BENCH_DIR="$PWD/target/ci/uu-bench" \
  cargo bench -q --offline -p uu-bench --bench compile > /dev/null
./target/release/uu-jsonck target/ci/uu-bench/BENCH_compile.json
./target/release/uu-jsonck BENCH_compile.json

echo "ci.sh: all green"
